package grounding

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// buildTS builds a TableSet over an already-constructed program + evidence.
func buildTS(t *testing.T, prog *mln.Program, ev *mln.Evidence) *TableSet {
	t.Helper()
	ts, err := BuildTables(db.Open(db.Config{}), prog, ev)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// translateDelta rebinds a delta's predicate pointers onto another program
// with identical declarations. Constant ids transfer as-is: both programs
// intern symbols in the same order (see datagen.RandomDelta).
func translateDelta(prog *mln.Program, d mln.Delta) mln.Delta {
	var out mln.Delta
	for _, op := range d.Ops {
		out.Ops = append(out.Ops, mln.DeltaOp{
			Pred:  prog.MustPredicate(op.Pred.Name),
			Args:  append([]int32(nil), op.Args...),
			Truth: op.Truth,
		})
	}
	return out
}

// requireBitIdentical asserts the two grounding results describe the same MRF
// bit for bit: atom count and order, clause list, weights, fixed cost. Atom
// identity crosses symbol tables via formatting (the two sides may come from
// independently parsed programs).
func requireBitIdentical(t *testing.T, label string, tsA *TableSet, a *Result, tsB *TableSet, b *Result) {
	t.Helper()
	if a.MRF.NumAtoms != b.MRF.NumAtoms {
		t.Fatalf("%s: NumAtoms %d != %d", label, a.MRF.NumAtoms, b.MRF.NumAtoms)
	}
	if a.MRF.FixedCost != b.MRF.FixedCost {
		t.Fatalf("%s: FixedCost %v != %v", label, a.MRF.FixedCost, b.MRF.FixedCost)
	}
	for i := 1; i <= a.MRF.NumAtoms; i++ {
		fa := a.MRF.Atoms[i].Format(tsA.Prog.Syms)
		fb := b.MRF.Atoms[i].Format(tsB.Prog.Syms)
		if fa != fb {
			t.Fatalf("%s: atom %d is %s vs %s", label, i, fa, fb)
		}
	}
	if len(a.MRF.Clauses) != len(b.MRF.Clauses) {
		t.Fatalf("%s: clause count %d != %d", label, len(a.MRF.Clauses), len(b.MRF.Clauses))
	}
	for i := range a.MRF.Clauses {
		ca, cb := a.MRF.Clauses[i], b.MRF.Clauses[i]
		if ca.Weight != cb.Weight || !reflect.DeepEqual(ca.Lits, cb.Lits) {
			t.Fatalf("%s: clause %d differs: %+v vs %+v", label, i, ca, cb)
		}
	}
}

// allPreds marks every predicate changed, forcing a full re-run.
func allPreds(prog *mln.Program) map[*mln.Predicate]bool {
	out := make(map[*mln.Predicate]bool)
	for _, p := range prog.Preds {
		out[p] = true
	}
	return out
}

// tinyDelta builds a hand-picked delta over the tiny fixture exercising every
// op shape: closed insert, closed retract, open truth set, open retract.
func tinyDelta(prog *mln.Program) mln.Delta {
	friend := prog.MustPredicate("friend")
	smokes := prog.MustPredicate("smokes")
	anna := prog.Constant("person", "Anna")
	bob := prog.Constant("person", "Bob")
	carl := prog.Constant("person", "Carl")
	var d mln.Delta
	d.Upsert(friend, []int32{carl, anna}, mln.True) // closed insert
	d.Remove(friend, []int32{anna, bob})            // closed retract
	d.Upsert(smokes, []int32{bob}, mln.False)       // open set
	d.Remove(smokes, []int32{anna})                 // open retract (back to query)
	return d
}

// regroundOnce applies the delta to ts and runs the incremental re-ground,
// returning the new result and the touched-atom flags.
func regroundOnce(t *testing.T, inc *Incremental, delta mln.Delta) (*Result, []bool, RegroundInfo) {
	t.Helper()
	if _, err := inc.TS.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	res, touched, info, err := inc.Reground(context.Background(), delta.Preds())
	if err != nil {
		t.Fatal(err)
	}
	return res, touched, info
}

func TestRegroundBitIdenticalTiny(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	inc, _, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res1, _, info := regroundOnce(t, inc, tinyDelta(ts.Prog))
	if info.ClausesRerun == 0 || info.ClausesRerun > info.ClausesTotal {
		t.Fatalf("implausible rerun count: %+v", info)
	}

	// Reference: a fresh parse, the same delta folded into the evidence
	// before tables are even built, and a full bottom-up ground.
	tsRef := setup(t, tinyProg, tinyEv)
	if _, err := tsRef.Ev.Apply(translateDelta(tsRef.Prog, tinyDelta(ts.Prog))); err != nil {
		t.Fatal(err)
	}
	tsRef2 := buildTS(t, tsRef.Prog, tsRef.Ev)
	ref, err := GroundBottomUp(context.Background(), tsRef2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "tiny", ts, res1, tsRef2, ref)
}

func TestRegroundBitIdenticalDatasets(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *datagen.Dataset
		pred string
		n    int
	}{
		{"RC/refers", func() *datagen.Dataset {
			return datagen.RC(datagen.RCConfig{Papers: 60, Authors: 30, Categories: 4, Clusters: 12, Seed: 11})
		}, "refers", 8},
		{"RC/cat", func() *datagen.Dataset {
			return datagen.RC(datagen.RCConfig{Papers: 60, Authors: 30, Categories: 4, Clusters: 12, Seed: 11})
		}, "cat", 6},
		{"IE/hint", func() *datagen.Dataset {
			return datagen.IE(datagen.IEConfig{Chains: 30, Seed: 13})
		}, "hint", 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := tc.gen()
			delta := datagen.RandomDelta(ds, tc.pred, tc.n, 99)
			if delta.Len() == 0 {
				t.Fatal("empty delta")
			}
			ts := buildTS(t, ds.Prog, ds.Ev)
			inc, _, err := NewIncremental(context.Background(), ts, Options{})
			if err != nil {
				t.Fatal(err)
			}
			res1, _, _ := regroundOnce(t, inc, delta)

			// Reference instance regenerated from the same config: identical
			// symbol ids, so the delta transfers numerically.
			dsRef := tc.gen()
			if _, err := dsRef.Ev.Apply(translateDelta(dsRef.Prog, delta)); err != nil {
				t.Fatal(err)
			}
			tsRef := buildTS(t, dsRef.Prog, dsRef.Ev)
			ref, err := GroundBottomUp(context.Background(), tsRef, Options{})
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, tc.name, ts, res1, tsRef, ref)
		})
	}
}

func TestRegroundRollbackRestores(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	inc, res0, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	undo, err := ts.ApplyDelta(tinyDelta(ts.Prog))
	if err != nil {
		t.Fatal(err)
	}
	if err := undo.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Re-grounding everything after the rollback must reproduce the original
	// epoch exactly, with an empty raw diff.
	res1, _, info, err := inc.Reground(context.Background(), allPreds(ts.Prog))
	if err != nil {
		t.Fatal(err)
	}
	if info.RawsAdded != 0 || info.RawsRemoved != 0 || info.TouchedAids != 0 {
		t.Fatalf("rollback left a raw diff: %+v", info)
	}
	requireBitIdentical(t, "rollback", ts, res1, ts, res0)
}

func TestRegroundRetryAfterRollbackMatchesFresh(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	inc, _, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	delta := tinyDelta(ts.Prog)
	// First attempt: applied, then rolled back (simulating a failed update).
	undo, err := ts.ApplyDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := undo.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Retry: apply again and re-ground — must equal the fresh reference.
	res1, _, _ := regroundOnce(t, inc, delta)

	tsRef := setup(t, tinyProg, tinyEv)
	if _, err := tsRef.Ev.Apply(translateDelta(tsRef.Prog, delta)); err != nil {
		t.Fatal(err)
	}
	tsRef2 := buildTS(t, tsRef.Prog, tsRef.Ev)
	ref, err := GroundBottomUp(context.Background(), tsRef2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "retry", ts, res1, tsRef2, ref)
}

func TestApplyDeltaValidationLeavesNoTrace(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	inc, res0, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	friend := ts.Prog.MustPredicate("friend")
	anna := ts.Prog.Constant("person", "Anna")
	var bad mln.Delta
	bad.Upsert(friend, []int32{anna, 9999}, mln.True) // unknown constant id
	if _, err := ts.ApplyDelta(bad); !errors.Is(err, mln.ErrConstantNotInDomain) {
		t.Fatalf("want ErrConstantNotInDomain, got %v", err)
	}
	res1, _, info, err := inc.Reground(context.Background(), bad.Preds())
	if err != nil {
		t.Fatal(err)
	}
	if info.RawsAdded != 0 || info.RawsRemoved != 0 {
		t.Fatalf("rejected delta mutated tables: %+v", info)
	}
	requireBitIdentical(t, "rejected", ts, res1, ts, res0)
}

func TestPatchApplyReconstructs(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	inc, res0, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res1, _, _ := regroundOnce(t, inc, tinyDelta(ts.Prog))

	oldToNew, newToOld := AtomMaps(res0, res1)
	p := mrf.ComputePatch(res0.MRF, res1.MRF, oldToNew, newToOld)
	got := p.Apply(res0.MRF)
	if got.NumAtoms != res1.MRF.NumAtoms || got.FixedCost != res1.MRF.FixedCost {
		t.Fatalf("patch apply header mismatch: %d/%v vs %d/%v",
			got.NumAtoms, got.FixedCost, res1.MRF.NumAtoms, res1.MRF.FixedCost)
	}
	if !reflect.DeepEqual(got.Clauses, res1.MRF.Clauses) {
		t.Fatalf("patch apply clauses differ:\n%v\nvs\n%v", got.Clauses, res1.MRF.Clauses)
	}
	if !reflect.DeepEqual(got.Atoms, res1.MRF.Atoms) {
		t.Fatal("patch apply atom table differs")
	}
	if p.Identical() {
		t.Fatal("a real delta produced an identical patch")
	}
}

func TestPatchIdenticalOnNoOp(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	inc, res0, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res1, _, info, err := inc.Reground(context.Background(), allPreds(ts.Prog))
	if err != nil {
		t.Fatal(err)
	}
	if info.RawsAdded != 0 || info.RawsRemoved != 0 {
		t.Fatalf("no-op reground produced a diff: %+v", info)
	}
	oldToNew, newToOld := AtomMaps(res0, res1)
	if p := mrf.ComputePatch(res0.MRF, res1.MRF, oldToNew, newToOld); !p.Identical() {
		t.Fatalf("no-op patch not identical: %+v", p)
	}
}

func TestRepairComponentsMatchesFresh(t *testing.T) {
	ds := datagen.RC(datagen.RCConfig{Papers: 60, Authors: 30, Categories: 4, Clusters: 12, Seed: 11})
	delta := datagen.RandomDelta(ds, "refers", 8, 99)
	ts := buildTS(t, ds.Prog, ds.Ev)
	inc, res0, err := NewIncremental(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldComps := res0.MRF.Components(false)
	res1, touched, _ := regroundOnce(t, inc, delta)
	_, newToOld := AtomMaps(res0, res1)

	got, reused := mrf.RepairComponents(oldComps, res1.MRF, newToOld, touched, false)
	want := res1.MRF.Components(false)
	if len(got) != len(want) {
		t.Fatalf("component count %d != %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].GlobalAtom, want[i].GlobalAtom) {
			t.Fatalf("component %d atom map differs", i)
		}
		if !reflect.DeepEqual(got[i].MRF, want[i].MRF) {
			t.Fatalf("component %d local MRF differs", i)
		}
	}
	if reused == 0 {
		t.Fatal("a small delta on a many-component dataset must reuse components")
	}
	if reused == len(got) {
		t.Fatal("a non-empty delta must rebuild at least one component")
	}
}

func TestPartitionRepairMatchesAlgorithm3(t *testing.T) {
	ds := datagen.RC(datagen.RCConfig{Papers: 60, Authors: 30, Categories: 4, Clusters: 12, Seed: 11})
	delta := datagen.RandomDelta(ds, "refers", 8, 99)
	for _, beta := range []int{0, 60} {
		ts := buildTS(t, ds.Prog, ds.Ev)
		inc, res0, err := NewIncremental(context.Background(), ts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		oldPt := partition.Algorithm3(res0.MRF, beta)
		res1, touched, _ := regroundOnce(t, inc, translateDelta(ts.Prog, delta))
		_, newToOld := AtomMaps(res0, res1)

		got, reused := partition.Repair(oldPt, res1.MRF, newToOld, touched, beta)
		want := partition.Algorithm3(res1.MRF, beta)
		if len(got.Parts) != len(want.Parts) {
			t.Fatalf("beta=%d: part count %d != %d", beta, len(got.Parts), len(want.Parts))
		}
		for i := range want.Parts {
			g, w := got.Parts[i], want.Parts[i]
			if g.SizeUnits != w.SizeUnits ||
				!reflect.DeepEqual(g.GlobalAtom, w.GlobalAtom) ||
				!reflect.DeepEqual(g.Local, w.Local) {
				t.Fatalf("beta=%d: part %d differs", beta, i)
			}
		}
		if !reflect.DeepEqual(got.PartOf, want.PartOf) {
			t.Fatalf("beta=%d: PartOf differs", beta)
		}
		if !reflect.DeepEqual(got.Cut, want.Cut) || got.CutWeight != want.CutWeight {
			t.Fatalf("beta=%d: cut differs: %d/%v vs %d/%v",
				beta, len(got.Cut), got.CutWeight, len(want.Cut), want.CutWeight)
		}
		if reused == 0 {
			t.Fatalf("beta=%d: no parts reused", beta)
		}
	}
}
