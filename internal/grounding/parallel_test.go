package grounding

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
)

// groundDataset builds fresh tables for ds and grounds with the given worker
// count.
func groundDataset(t *testing.T, ds *datagen.Dataset, workers int) (*TableSet, *Result) {
	t.Helper()
	d := db.Open(db.Config{})
	ts, err := BuildTables(d, ds.Prog, ds.Ev)
	if err != nil {
		t.Fatalf("%s tables: %v", ds.Name, err)
	}
	res, err := GroundBottomUp(context.Background(), ts, Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s grounding (%d workers): %v", ds.Name, workers, err)
	}
	return ts, res
}

// assertIdentical requires two grounding results to be bit-identical: same
// clauses (weights, literals, order), same atom numbering, same stats.
// PeakBytes is exempt from exact equality: it measures the largest transient
// row buffer, which hash-range splitting legitimately shrinks (each range
// materializes a fraction of the clause's rows), so it must only not grow.
func assertIdentical(t *testing.T, name string, seq, par *Result) {
	t.Helper()
	if par.Stats.PeakBytes > seq.Stats.PeakBytes {
		t.Fatalf("%s: parallel PeakBytes grew: seq %d, par %d", name, seq.Stats.PeakBytes, par.Stats.PeakBytes)
	}
	seqStats, parStats := seq.Stats, par.Stats
	seqStats.PeakBytes, parStats.PeakBytes = 0, 0
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Fatalf("%s: stats differ:\n seq %+v\n par %+v", name, seq.Stats, par.Stats)
	}
	if !reflect.DeepEqual(seq.TableAid, par.TableAid) {
		t.Fatalf("%s: atom numbering differs", name)
	}
	if !reflect.DeepEqual(seq.AtomID, par.AtomID) {
		t.Fatalf("%s: aid->atom map differs", name)
	}
	if len(seq.MRF.Clauses) != len(par.MRF.Clauses) {
		t.Fatalf("%s: clause counts differ: %d vs %d", name, len(seq.MRF.Clauses), len(par.MRF.Clauses))
	}
	for i := range seq.MRF.Clauses {
		if !reflect.DeepEqual(seq.MRF.Clauses[i], par.MRF.Clauses[i]) {
			t.Fatalf("%s: clause %d differs:\n seq %+v\n par %+v",
				name, i, seq.MRF.Clauses[i], par.MRF.Clauses[i])
		}
	}
	if !reflect.DeepEqual(seq.MRF.Atoms, par.MRF.Atoms) {
		t.Fatalf("%s: MRF atom registries differ", name)
	}
	if seq.MRF.FixedCost != par.MRF.FixedCost {
		t.Fatalf("%s: fixed cost differs: %v vs %v", name, seq.MRF.FixedCost, par.MRF.FixedCost)
	}
}

// exampleDatasets are the dataset configurations of the examples/ programs:
// entityres (ER), classify (RC), plus IE and LP covering the remaining
// example workloads.
func exampleDatasets() []*datagen.Dataset {
	return []*datagen.Dataset{
		datagen.ER(datagen.ERConfig{Records: 40, Groups: 10, Seed: 3}),                                // examples/entityres
		datagen.RC(datagen.RCConfig{Papers: 400, Authors: 160, Categories: 5, Clusters: 80, Seed: 7}), // examples/classify
		datagen.IE(datagen.IEConfig{Chains: 200, Seed: 12}),
		datagen.LP(datagen.LPConfig{Profs: 10, Students: 40, Courses: 24, Seed: 13}),
	}
}

// TestGroundBottomUpParallelDeterminism grounds each example workload with
// 1, 4 and 8 workers over independently built table sets and requires
// bit-identical results: the worker pool must not change the MRF, the atom
// numbering, or the statistics.
func TestGroundBottomUpParallelDeterminism(t *testing.T) {
	for _, ds := range exampleDatasets() {
		_, seq := groundDataset(t, ds, 1)
		for _, workers := range []int{4, 8} {
			_, par := groundDataset(t, ds, workers)
			assertIdentical(t, ds.Name, seq, par)
		}
	}
}

// TestGroundBottomUpParallelSharedTables grounds the same TableSet
// concurrently-reading with several worker counts; the read path of the
// engine must tolerate the concurrency and the outputs must match.
func TestGroundBottomUpParallelSharedTables(t *testing.T) {
	ds := datagen.ER(datagen.ERConfig{Records: 40, Groups: 10, Seed: 3})
	d := db.Open(db.Config{BufferPoolPages: 8}) // small pool: force eviction under concurrency
	ts, err := BuildTables(d, ds.Prog, ds.Ev)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := GroundBottomUp(context.Background(), ts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := GroundBottomUp(context.Background(), ts, Options{Workers: workers})
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		assertIdentical(t, ds.Name, seq, par)
	}
}

// TestGroundBottomUpParallelWithClosure checks the closure path composes
// with the worker pool (closure runs after the deterministic merge, so it
// must see the same raw clause order).
func TestGroundBottomUpParallelWithClosure(t *testing.T) {
	ds := datagen.IE(datagen.IEConfig{Chains: 100, Seed: 5})
	d := db.Open(db.Config{})
	ts, err := BuildTables(d, ds.Prog, ds.Ev)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := GroundBottomUp(context.Background(), ts, Options{UseClosure: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := GroundBottomUp(context.Background(), ts, Options{UseClosure: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, ds.Name, seq, par)
}

// TestGroundBottomUpLesionBitIdentity grounds IE and RC (plus ER, the
// single-dominant-clause workload the hash-range planner exists for) at 1,
// 2, 4 and 8 workers, with the intra-clause planner on and with the
// clause-level lesion, and requires every combination to produce the same
// result bit for bit — split decisions and range merges must be invisible
// in the output.
func TestGroundBottomUpLesionBitIdentity(t *testing.T) {
	for _, ds := range []*datagen.Dataset{
		datagen.IE(datagen.IEConfig{Chains: 150, Seed: 21}),
		datagen.RC(datagen.RCConfig{Papers: 300, Authors: 120, Categories: 5, Clusters: 60, Seed: 22}),
		datagen.ER(datagen.ERConfig{Records: 30, Groups: 8, Seed: 23}),
	} {
		d := db.Open(db.Config{})
		ts, err := BuildTables(d, ds.Prog, ds.Ev)
		if err != nil {
			t.Fatalf("%s tables: %v", ds.Name, err)
		}
		seq, err := GroundBottomUp(context.Background(), ts, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			for _, lesion := range []bool{false, true} {
				par, err := GroundBottomUp(context.Background(), ts,
					Options{Workers: workers, ClauseLevelOnly: lesion})
				if err != nil {
					t.Fatalf("%s (%d workers, lesion=%v): %v", ds.Name, workers, lesion, err)
				}
				assertIdentical(t, fmt.Sprintf("%s/%dw/lesion=%v", ds.Name, workers, lesion), seq, par)
			}
		}
	}
}

// TestGroundBottomUpParallelError checks that a failing clause reports the
// same (first-in-clause-order) error for every worker count.
func TestGroundBottomUpParallelError(t *testing.T) {
	ts := setup(t, `
*p(person, person)
q(person)
1 p(x, y) => q(x)
1 p(a, a)
`, `
p(A, B)
`)
	_, errSeq := GroundBottomUp(context.Background(), ts, Options{Workers: 1})
	if errSeq == nil {
		t.Fatal("expected sequential grounding error")
	}
	_, errPar := GroundBottomUp(context.Background(), ts, Options{Workers: 4})
	if errPar == nil {
		t.Fatal("expected parallel grounding error")
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error mismatch:\n seq %v\n par %v", errSeq, errPar)
	}
}
