package grounding

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tuffy/internal/db/plan"
	"tuffy/internal/mln"
)

// Options controls grounding for both strategies.
type Options struct {
	// UseClosure applies the lazy-inference active closure of Appendix A.3
	// after evidence pruning, as Tuffy and Alchemy both do. Atoms outside
	// the closure are pinned false and their clauses dropped.
	UseClosure bool
	// Workers is the number of concurrent grounding workers for the
	// bottom-up strategy; values below 2 ground sequentially. The grounding
	// result is identical for every worker count: task outputs are merged
	// in clause-ID-then-range order before MRF atom renumbering.
	Workers int
	// ClauseLevelOnly disables intra-clause hash-range parallelism (the
	// lesion): the worker pool schedules whole clauses only, so the
	// parallel speedup caps at the most expensive clause's query. With it
	// unset, a clause whose estimated cost exceeds a fair share of the
	// total is partitioned into Workers hash ranges of a join variable and
	// the ranges ground concurrently.
	ClauseLevelOnly bool
}

// rawClause is a ground clause before MRF atom renumbering: parallel slices
// of table aids and literal signs.
type rawClause struct {
	weight float64
	aids   []int64
	pos    []bool
}

// GroundBottomUp grounds the program by compiling one SQL query per clause
// and executing it on the RDBMS (the paper's Section 3.1). The join order
// and algorithms are chosen by the engine's optimizer, subject to the
// engine's plan.Options (which the Table 6 lesion study manipulates).
//
// With Options.Workers > 1 the per-clause grounding queries compile and
// execute concurrently on a worker pool; each worker accumulates its
// clauses' raw groundings privately and the results are merged in clause-ID
// order, so the MRF is bit-identical to the sequential path regardless of
// worker count or scheduling.
//
// Cancellation: workers poll the context before each clause; a canceled
// context aborts the grounding with the context's cause (there is no
// partial grounding result).
func GroundBottomUp(ctx context.Context, ts *TableSet, opts Options) (*Result, error) {
	clauses := ts.Prog.Clauses
	perClause := make([][]rawClause, len(clauses))
	perStats := make([]Stats, len(clauses))
	if err := groundSelectedSQL(ctx, ts, opts, perClause, perStats, nil); err != nil {
		return nil, err
	}
	return assembleResult(ts, perClause, perStats, opts, true), nil
}

// groundSelectedSQL compiles and executes the grounding query of every
// selected clause (sel[i] reports whether clause i runs; nil selects all),
// writing raw groundings and stats into perClause/perStats by clause ID.
// Unselected slots are left untouched, which is how the incremental grounder
// reuses cached raws.
//
// With more than one worker the scheduler runs clause×range tasks: each
// clause whose estimated query cost exceeds a fair share of the total is
// partitioned into Workers hash ranges of a join variable (see planSplits),
// so a single dominant clause no longer serializes the phase. Task
// scheduling never changes the output: each (clause, range) slot is written
// by exactly one goroutine, each task canonicalizes its own output, and the
// per-clause results are stably key-merged in range order (mergeCanon) —
// making the result bit-identical to the sequential path for every worker
// count and split decision.
func groundSelectedSQL(ctx context.Context, ts *TableSet, opts Options, perClause [][]rawClause, perStats []Stats, sel []bool) error {
	clauses := ts.Prog.Clauses
	run := make([]int, 0, len(clauses))
	for i := range clauses {
		if sel == nil || sel[i] {
			run = append(run, i)
		}
	}

	workers := opts.Workers
	if opts.ClauseLevelOnly && workers > len(run) {
		workers = len(run)
	}
	if workers <= 1 || len(run) == 0 {
		perErr := make([]error, len(clauses))
		for _, i := range run {
			if err := context.Cause(ctx); ctx.Err() != nil {
				return err
			}
			perClause[i], perErr[i] = groundClauseSQL(ts, clauses[i], &perStats[i])
			if perErr[i] != nil {
				return fmt.Errorf("grounding clause %d (%s): %w", clauses[i].ID, clauses[i].Source, perErr[i])
			}
		}
		return nil
	}

	// Compile every selected clause once, up front: the scheduler costs the
	// compiled queries to pick splits, and range tasks share a compilation.
	comps := make([]*Compiled, len(clauses))
	for _, i := range run {
		comp, err := CompileClauseSQL(ts, clauses[i])
		if err != nil {
			return fmt.Errorf("grounding clause %d (%s): %w", clauses[i].ID, clauses[i].Source, err)
		}
		comps[i] = comp
	}
	splits := map[int]int{}
	if !opts.ClauseLevelOnly {
		splits = planSplits(ts, comps, run, workers)
	}

	type task struct{ clause, rng int } // rng < 0: whole clause
	var tasks []task
	partRaws := make([][][]rawClause, len(clauses))
	partKeys := make([][][]string, len(clauses))
	partErr := make([][]error, len(clauses))
	partStats := make([][]Stats, len(clauses))
	for _, i := range run {
		w := 1
		if splits[i] > 1 {
			w = splits[i]
			for r := 0; r < w; r++ {
				tasks = append(tasks, task{i, r})
			}
		} else {
			tasks = append(tasks, task{i, -1})
		}
		partRaws[i] = make([][]rawClause, w)
		partKeys[i] = make([][]string, w)
		partErr[i] = make([]error, w)
		partStats[i] = make([]Stats, w)
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(tasks) || failed.Load() || ctx.Err() != nil {
					return
				}
				t := tasks[n]
				i, slot := t.clause, t.rng
				var rng *clauseRange
				if slot < 0 {
					slot = 0
				} else {
					rng = &clauseRange{
						v:   comps[i].SplitVars[0],
						mod: uint32(splits[i]),
						rem: uint32(t.rng),
					}
				}
				raws, err := groundCompiled(ts, clauses[i], comps[i], rng, &partStats[i][slot])
				if err != nil {
					partErr[i][slot] = err
					failed.Store(true) // fail fast, like the sequential path
					continue
				}
				// Canonicalize inside the task: key building dominates the
				// cost of large clauses, and per-range canon parallelizes it.
				partRaws[i][slot], partKeys[i][slot] = canonRawsKeys(ts, raws)
			}
		}()
	}
	wg.Wait()
	if err := context.Cause(ctx); ctx.Err() != nil {
		return err
	}
	// Report the first error in clause-then-range order so failures are
	// deterministic across worker counts and schedules.
	for _, i := range run {
		for _, err := range partErr[i] {
			if err != nil {
				return fmt.Errorf("grounding clause %d (%s): %w", clauses[i].ID, clauses[i].Source, err)
			}
		}
	}
	// Stably merge each clause's canonical range outputs by key (ties to the
	// earlier range): the result is exactly canonRaws of the unsplit query's
	// multiset, so everything downstream is bit-identical to it.
	for _, i := range run {
		if len(partRaws[i]) == 1 {
			perClause[i] = partRaws[i][0]
		} else {
			perClause[i] = mergeCanon(partRaws[i], partKeys[i])
		}
		perStats[i] = Stats{}
		for _, st := range partStats[i] {
			perStats[i].JoinRowsVisited += st.JoinRowsVisited
			if st.PeakBytes > perStats[i].PeakBytes {
				perStats[i].PeakBytes = st.PeakBytes
			}
		}
	}
	return nil
}

// planSplits decides how many hash ranges each clause's grounding query
// fans out into. Costs come from the optimizer's own estimates
// (EstRows+EstBlocks of the chosen plan); a clause splits into `workers`
// ranges exactly when (a) its cost is at least twice everything else
// combined — the single dominant clause (e.g. ER's cubic transitivity
// rule) whose tail no whole-clause schedule can hide behind other work:
// at a 2/3 share the best whole-clause speedup is already capped at 1.5x
// no matter how many workers run — (b) it has a universal join variable
// to partition by, and (c) its estimated join
// output dwarfs the page reads the split duplicates: every range task
// re-scans the same base-table pages and filters, so k ranges cost
// ~k·EstBlocks extra I/O against an EstRows·(k-1)/k division of row work,
// which pays exactly when EstRows > k·EstBlocks. Clauses below the
// dominance margin stay whole: the scheduler already overlaps them with
// the rest of the clause list, and splitting them only multiplies
// physical reads.
func planSplits(ts *TableSet, comps []*Compiled, run []int, workers int) map[int]int {
	splits := make(map[int]int)
	costs := make(map[int]float64, len(run))
	rows := make(map[int]float64, len(run))
	blocks := make(map[int]float64, len(run))
	total := 0.0
	for _, i := range run {
		if comps[i].Skip {
			continue
		}
		est, err := ts.DB.EstimateQuery(comps[i].SQL)
		if err != nil {
			continue // cost unknown: never split, always correct
		}
		rows[i] = float64(est.EstRows)
		blocks[i] = float64(est.EstBlocks)
		costs[i] = rows[i] + blocks[i]
		total += costs[i]
	}
	if total <= 0 {
		return splits
	}
	for _, i := range run {
		if len(comps[i].SplitVars) > 0 && costs[i] > 2*(total-costs[i]) &&
			rows[i] > float64(workers)*blocks[i] {
			splits[i] = workers
		}
	}
	return splits
}

// assembleResult merges per-clause raw groundings in clause-ID order, applies
// the optional active closure, and folds everything through the clause
// accumulator. With release set, each per-clause slice is dropped as it is
// merged so the merge does not hold two copies of the ground clauses; the
// incremental grounder passes release=false to keep its cache.
func assembleResult(ts *TableSet, perClause [][]rawClause, perStats []Stats, opts Options, release bool) *Result {
	total := 0
	for i := range perClause {
		total += len(perClause[i])
	}
	raws := make([]rawClause, 0, total)
	stats := Stats{}
	for i := range perClause {
		raws = append(raws, perClause[i]...)
		if release {
			perClause[i] = nil
		}
		stats.JoinRowsVisited += perStats[i].JoinRowsVisited
		if perStats[i].PeakBytes > stats.PeakBytes {
			stats.PeakBytes = perStats[i].PeakBytes
		}
	}
	if opts.UseClosure {
		raws = activeClosure(raws)
	}
	ca := newClauseAccumulator(ts)
	for _, r := range raws {
		ca.add(r.weight, r.aids, r.pos)
	}
	return ca.finish(stats)
}

// ColRef names one alias.column of a compiled grounding query.
type ColRef struct {
	Alias, Col string
}

// Compiled describes the SQL compilation of one first-order clause.
type Compiled struct {
	SQL string
	// ULits[i] is the universal clause literal behind columns
	// uaid<i>/utruth<i> of the query output.
	ULits []mln.Literal
	// ELits[j] is the existential literal behind columns eaid<j>/etruth<j>.
	ELits []mln.Literal
	// PostClosed are positive literals on closed predicates, checked
	// against evidence after the join (anti-join semantics under the CWA).
	PostClosed []PostClosedCheck
	// Skip means the clause is statically satisfied (e.g. "c = c") and
	// grounds to nothing.
	Skip bool
	// VarCols maps each clause variable to every alias.column of a table
	// literal binding it. A hash-range split restricts all of them, so
	// every scan of the variable prunes before the join.
	VarCols map[string][]ColRef
	// SplitVars lists the variables a hash-range split may partition on —
	// universally quantified and bound by at least one universal table
	// literal (so the existential fallback query binds them too) — ordered
	// by binding count (descending, ties by name) so SplitVars[0] is the
	// most join-restricting choice.
	SplitVars []string
}

// PostClosedCheck rebuilds the arguments of a closed positive literal from a
// query output row so the grounder can consult the evidence directly.
type PostClosedCheck struct {
	Lit mln.Literal
	// ConstVal[k] holds constant argument values.
	ConstVal []int32
	// VarIdx[n] is the argument position filled by the n-th pc column.
	VarIdx []int
	// varSrc[n] is the SQL expression selected for that column.
	varSrc []string
}

// CompileClauseSQL compiles an MLN clause to the SQL query that enumerates
// its non-pruned groundings (paper Algorithm 2 plus the pruning of Appendix
// A.3). Exposed for tests and the CLI's -explain mode.
func CompileClauseSQL(ts *TableSet, c *mln.Clause) (*Compiled, error) {
	if err := validateExistSafety(c); err != nil {
		return nil, err
	}
	out := &Compiled{}
	exist := make(map[string]bool, len(c.Exist))
	for _, v := range c.Exist {
		exist[v] = true
	}

	type tableLit struct {
		lit   mln.Literal
		alias string
		exist bool
	}
	var tlits []tableLit
	var builtins []mln.Literal
	for _, l := range c.Lits {
		if l.IsBuiltinEq() {
			builtins = append(builtins, l)
			continue
		}
		isExist := false
		for _, a := range l.Args {
			if a.IsVar && exist[a.Var] {
				isExist = true
			}
		}
		if !l.Negated && l.Pred.Closed && !isExist {
			out.PostClosed = append(out.PostClosed, PostClosedCheck{Lit: l})
			continue
		}
		alias := fmt.Sprintf("t%d", len(tlits))
		tlits = append(tlits, tableLit{lit: l, alias: alias, exist: isExist})
	}
	if len(tlits) == 0 {
		return nil, fmt.Errorf("no groundable literals (all closed-positive or builtin)")
	}

	// varCol maps each variable to the first table column binding it.
	type colRef struct{ alias, col string }
	varCol := make(map[string]colRef)
	out.VarCols = make(map[string][]ColRef)
	uBound := make(map[string]bool) // bound by a universal table literal
	var conds []string
	for _, tl := range tlits {
		for i, a := range tl.lit.Args {
			col := fmt.Sprintf("a%d", i)
			if !a.IsVar {
				conds = append(conds, fmt.Sprintf("%s.%s = %d", tl.alias, col, a.Const))
				continue
			}
			out.VarCols[a.Var] = append(out.VarCols[a.Var], ColRef{tl.alias, col})
			if !tl.exist {
				uBound[a.Var] = true
			}
			if first, ok := varCol[a.Var]; ok {
				conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", first.alias, first.col, tl.alias, col))
			} else {
				varCol[a.Var] = colRef{tl.alias, col}
			}
		}
		// Evidence pruning: a grounding is discarded when any literal is
		// satisfied by evidence (positive & true, or negative & false).
		// Existential literals are exempt: the fold needs to SEE evidence-
		// true witnesses, because one true witness satisfies (prunes) the
		// whole clause.
		if tl.exist {
			continue
		}
		if tl.lit.Negated {
			conds = append(conds, fmt.Sprintf("%s.truth <> %d", tl.alias, TruthFalse))
		} else {
			conds = append(conds, fmt.Sprintf("%s.truth <> %d", tl.alias, TruthTrue))
		}
	}

	// Split candidates: universal variables bound by a universal table
	// literal. The existential fallback recompiles ULits(+PostClosed) alone,
	// so only such variables are guaranteed bound there too; existential
	// variables are excluded because splitting them would scatter one
	// universal binding's witness group across ranges.
	for v := range uBound {
		if !exist[v] {
			out.SplitVars = append(out.SplitVars, v)
		}
	}
	sort.Slice(out.SplitVars, func(i, j int) bool {
		a, b := out.SplitVars[i], out.SplitVars[j]
		if la, lb := len(out.VarCols[a]), len(out.VarCols[b]); la != lb {
			return la > lb
		}
		return a < b
	})

	// Built-in (in)equalities become join conditions with flipped operator:
	// groundings where the builtin literal is TRUE are satisfied (pruned),
	// so the query keeps only those where it is FALSE; the literal drops.
	for _, b := range builtins {
		operandStr := func(t mln.Term) (string, error) {
			if !t.IsVar {
				return fmt.Sprint(t.Const), nil
			}
			cr, ok := varCol[t.Var]
			if !ok {
				return "", fmt.Errorf("equality variable %s unbound", t.Var)
			}
			return cr.alias + "." + cr.col, nil
		}
		if !b.Args[0].IsVar && !b.Args[1].IsVar {
			litTrue := (b.Args[0].Const == b.Args[1].Const) != b.Negated
			if litTrue {
				out.Skip = true
				return out, nil
			}
			continue // statically false: drop the literal
		}
		ls, err := operandStr(b.Args[0])
		if err != nil {
			return nil, err
		}
		rs, err := operandStr(b.Args[1])
		if err != nil {
			return nil, err
		}
		if b.Negated {
			conds = append(conds, fmt.Sprintf("%s = %s", ls, rs)) // (l != r) false iff l = r
		} else {
			conds = append(conds, fmt.Sprintf("%s <> %s", ls, rs))
		}
	}

	// Post-join evidence checks: variables must be bound by other literals.
	for pi := range out.PostClosed {
		pc := &out.PostClosed[pi]
		pc.ConstVal = make([]int32, len(pc.Lit.Args))
		for k, a := range pc.Lit.Args {
			if !a.IsVar {
				pc.ConstVal[k] = a.Const
				continue
			}
			cr, ok := varCol[a.Var]
			if !ok {
				return nil, fmt.Errorf("variable %s of closed positive literal %s unbound by other literals",
					a.Var, pc.Lit.Format(ts.Prog.Syms))
			}
			pc.VarIdx = append(pc.VarIdx, k)
			pc.varSrc = append(pc.varSrc, cr.alias+"."+cr.col)
		}
	}

	// SELECT list: universal aid/truth pairs, post-closed binding columns,
	// existential aid/truth pairs — in that fixed order.
	var sel []string
	var orderCols []string
	uIdx := 0
	for _, tl := range tlits {
		if tl.exist {
			continue
		}
		out.ULits = append(out.ULits, tl.lit)
		sel = append(sel, fmt.Sprintf("%s.aid AS uaid%d", tl.alias, uIdx))
		sel = append(sel, fmt.Sprintf("%s.truth AS utruth%d", tl.alias, uIdx))
		orderCols = append(orderCols, fmt.Sprintf("uaid%d", uIdx))
		uIdx++
	}
	for pi := range out.PostClosed {
		pc := &out.PostClosed[pi]
		for n, src := range pc.varSrc {
			sel = append(sel, fmt.Sprintf("%s AS pc%d_%d", src, pi, n))
		}
	}
	eIdx := 0
	for _, tl := range tlits {
		if !tl.exist {
			continue
		}
		out.ELits = append(out.ELits, tl.lit)
		sel = append(sel, fmt.Sprintf("%s.aid AS eaid%d", tl.alias, eIdx))
		sel = append(sel, fmt.Sprintf("%s.truth AS etruth%d", tl.alias, eIdx))
		eIdx++
	}

	var from []string
	for _, tl := range tlits {
		from = append(from, TableName(tl.lit.Pred)+" "+tl.alias)
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(from, ", "))
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(out.ELits) > 0 && len(orderCols) > 0 {
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(orderCols, ", "))
	}
	out.SQL = b.String()
	return out, nil
}

// evalPostClosed reports whether any closed positive literal is satisfied by
// evidence for this row (which prunes the grounding).
func evalPostClosed(ts *TableSet, comp *Compiled, row []int64, pcBase int) bool {
	col := pcBase
	for _, pc := range comp.PostClosed {
		args := make([]int32, len(pc.Lit.Args))
		copy(args, pc.ConstVal)
		for _, k := range pc.VarIdx {
			args[k] = int32(row[col])
			col++
		}
		if ts.Ev.TruthOf(pc.Lit.Pred, args) == mln.True {
			return true
		}
	}
	return false
}

func (c *Compiled) pcWidth() int {
	n := 0
	for _, pc := range c.PostClosed {
		n += len(pc.VarIdx)
	}
	return n
}

// clauseRange identifies one hash range of a clause's grounding work:
// groundings where split variable v's value hashes to rem modulo mod.
type clauseRange struct {
	v        string
	mod, rem uint32
}

// rangeRestrictions translates a clause range into hash-range restrictions on
// every table column binding the split variable. The join conditions equate
// those columns, so restricting all of them leaves the query's semantics
// unchanged while letting every scan prune to ~1/mod of its table before the
// join. A nil range restricts nothing.
func rangeRestrictions(comp *Compiled, rng *clauseRange) ([]plan.HashRange, error) {
	if rng == nil {
		return nil, nil
	}
	refs := comp.VarCols[rng.v]
	if len(refs) == 0 {
		return nil, fmt.Errorf("split variable %s unbound in compiled query %q", rng.v, comp.SQL)
	}
	out := make([]plan.HashRange, 0, len(refs))
	for _, r := range refs {
		out = append(out, plan.HashRange{Table: r.Alias, Col: r.Col, Mod: rng.mod, Rem: rng.rem})
	}
	return out, nil
}

// groundClauseSQL compiles, executes and folds one clause's groundings.
func groundClauseSQL(ts *TableSet, c *mln.Clause, stats *Stats) ([]rawClause, error) {
	comp, err := CompileClauseSQL(ts, c)
	if err != nil {
		return nil, err
	}
	out, err := groundCompiled(ts, c, comp, nil, stats)
	if err != nil {
		return nil, err
	}
	// Canonical order (see canon.go): makes the folded groundings — and
	// therefore the MRF built from them — independent of aid numbering and
	// SQL row order, which is what lets an incremental re-ground reproduce a
	// fresh Ground bit for bit.
	return canonRaws(ts, out), nil
}

// groundCompiled executes a compiled clause query — optionally restricted to
// one hash range of its split variable — and folds the rows into raw ground
// clauses. The output is NOT canonicalized: range outputs of one clause must
// be concatenated in range order first and canonicalized together, so the
// result matches an unsplit run bit for bit.
func groundCompiled(ts *TableSet, c *mln.Clause, comp *Compiled, rng *clauseRange, stats *Stats) ([]rawClause, error) {
	if comp.Skip {
		return nil, nil
	}
	restr, err := rangeRestrictions(comp, rng)
	if err != nil {
		return nil, err
	}
	rows, err := ts.DB.QueryRanged(comp.SQL, restr)
	if err != nil {
		return nil, fmt.Errorf("executing %q: %w", comp.SQL, err)
	}
	stats.JoinRowsVisited += int64(len(rows.Data))
	width := 2*len(comp.ULits) + comp.pcWidth() + 2*len(comp.ELits)
	if peak := int64(len(rows.Data)) * int64(8*width); peak > stats.PeakBytes {
		stats.PeakBytes = peak
	}

	nU := len(comp.ULits)
	pcBase := 2 * nU
	eBase := pcBase + comp.pcWidth()

	// Convert rows to int64 slices once.
	intRow := make([]int64, width)
	var out []rawClause

	type groupState struct {
		key       string
		satisfied bool
		aids      []int64
		pos       []bool
		valid     bool
	}
	var g groupState
	witnessed := make(map[string]bool)

	flush := func() {
		if g.valid && !g.satisfied {
			out = append(out, rawClause{weight: c.Weight, aids: g.aids, pos: g.pos})
		}
		g = groupState{}
	}

	uKey := func(r []int64) string {
		var kb strings.Builder
		for i := 0; i < nU; i++ {
			fmt.Fprintf(&kb, "%d,", r[2*i])
		}
		return kb.String()
	}

	for _, row := range rows.Data {
		for i := range intRow {
			intRow[i] = row[i].I
		}
		if evalPostClosed(ts, comp, intRow, pcBase) {
			continue
		}
		var aids []int64
		var pos []bool
		for i, lit := range comp.ULits {
			aid := intRow[2*i]
			truth := intRow[2*i+1]
			if truth != TruthUnknown {
				// The satisfied combinations were pruned by SQL; what is
				// left is a literal that evidence makes false — drop it.
				continue
			}
			aids = append(aids, aid)
			pos = append(pos, !lit.Negated)
		}
		if len(comp.ELits) == 0 {
			out = append(out, rawClause{weight: c.Weight, aids: aids, pos: pos})
			continue
		}
		key := uKey(intRow)
		witnessed[key] = true
		if !g.valid || g.key != key {
			flush()
			g = groupState{key: key, valid: true, aids: aids, pos: pos}
		}
		for j := range comp.ELits {
			eaid := intRow[eBase+2*j]
			etruth := intRow[eBase+2*j+1]
			switch etruth {
			case TruthTrue:
				g.satisfied = true // evidence-true witness satisfies the clause
			case TruthFalse:
				// false witness contributes nothing
			default:
				g.aids = append(g.aids, eaid)
				g.pos = append(g.pos, true)
			}
		}
	}
	if len(comp.ELits) > 0 {
		flush()
		extra, err := existentialFallback(ts, c, comp, rng, witnessed, stats)
		if err != nil {
			return nil, err
		}
		out = append(out, extra...)
	}
	return out, nil
}

// existentialFallback grounds the universal part alone to catch bindings
// with no existential witness at all (inner joins drop them), for which the
// clause reduces to its universal literals. Under a hash-range split the
// fallback query carries the same restriction, re-derived from its own
// recompilation (aliases renumber), so each binding surfaces in exactly one
// range — and its witnesses, which share the split variable's value, are
// grounded by the same range's main query.
func existentialFallback(ts *TableSet, c *mln.Clause, comp *Compiled, rng *clauseRange, witnessed map[string]bool, stats *Stats) ([]rawClause, error) {
	if len(comp.ULits) == 0 {
		return nil, nil
	}
	uClause := &mln.Clause{Weight: c.Weight, Source: c.Source + " [existential fallback]"}
	uClause.Lits = append(uClause.Lits, comp.ULits...)
	for _, pc := range comp.PostClosed {
		uClause.Lits = append(uClause.Lits, pc.Lit)
	}
	uComp, err := CompileClauseSQL(ts, uClause)
	if err != nil {
		return nil, err
	}
	if uComp.Skip {
		return nil, nil
	}
	restr, err := rangeRestrictions(uComp, rng)
	if err != nil {
		return nil, fmt.Errorf("existential fallback: %w", err)
	}
	uRows, err := ts.DB.QueryRanged(uComp.SQL, restr)
	if err != nil {
		return nil, err
	}
	stats.JoinRowsVisited += int64(len(uRows.Data))

	nU := len(uComp.ULits)
	pcBase := 2 * nU
	width := pcBase + uComp.pcWidth()
	intRow := make([]int64, width)
	var out []rawClause
	for _, row := range uRows.Data {
		for i := range intRow {
			intRow[i] = row[i].I
		}
		if evalPostClosed(ts, uComp, intRow, pcBase) {
			continue
		}
		var kb strings.Builder
		for i := 0; i < nU; i++ {
			fmt.Fprintf(&kb, "%d,", intRow[2*i])
		}
		if witnessed[kb.String()] {
			continue
		}
		var aids []int64
		var pos []bool
		for i, lit := range uComp.ULits {
			if intRow[2*i+1] != TruthUnknown {
				continue
			}
			aids = append(aids, intRow[2*i])
			pos = append(pos, !lit.Negated)
		}
		out = append(out, rawClause{weight: c.Weight, aids: aids, pos: pos})
	}
	return out, nil
}

// validateExistSafety rejects existential clauses whose universally
// quantified variables appear only inside existential literals: the
// grounding fold groups by the universal literals' atom ids, which would
// wrongly merge distinct bindings of such variables.
func validateExistSafety(c *mln.Clause) error {
	if len(c.Exist) == 0 {
		return nil
	}
	exist := make(map[string]bool, len(c.Exist))
	for _, v := range c.Exist {
		exist[v] = true
	}
	boundByUniversal := make(map[string]bool)
	for _, l := range c.Lits {
		if l.IsBuiltinEq() || hasExistVar(l, exist) {
			continue
		}
		for _, a := range l.Args {
			if a.IsVar {
				boundByUniversal[a.Var] = true
			}
		}
	}
	for _, l := range c.Lits {
		if l.IsBuiltinEq() || !hasExistVar(l, exist) {
			continue
		}
		for _, a := range l.Args {
			if a.IsVar && !exist[a.Var] && !boundByUniversal[a.Var] {
				return fmt.Errorf("unsafe existential clause: variable %s appears only in existential literals", a.Var)
			}
		}
	}
	return nil
}

// activeClosure implements the lazy-inference closure of Appendix A.3:
// assume unknown atoms false; a positive-weight clause is active when every
// one of its negated literals is on an active atom; activating a clause
// activates all its atoms; iterate to fixpoint. Hard and negative-weight
// clauses are always active (the all-false default does not cover their
// cost structure) and seed the active set.
func activeClosure(raws []rawClause) []rawClause {
	active := make(map[int64]bool)
	kept := make([]bool, len(raws))
	for i, r := range raws {
		if len(r.aids) == 0 {
			kept[i] = true
			continue
		}
		seed := r.weight < 0 || math.IsInf(r.weight, 1)
		if !seed {
			seed = true
			for _, p := range r.pos {
				if !p {
					seed = false
					break
				}
			}
		}
		if seed {
			kept[i] = true
			for _, a := range r.aids {
				active[a] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i, r := range raws {
			if kept[i] {
				continue
			}
			ok := true
			for j, p := range r.pos {
				if !p && !active[r.aids[j]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			kept[i] = true
			changed = true
			for _, a := range r.aids {
				active[a] = true
			}
		}
	}
	out := raws[:0]
	for i, r := range raws {
		if kept[i] {
			out = append(out, r)
		}
	}
	return out
}
