package grounding

import (
	"context"
	"fmt"
	"strings"

	"tuffy/internal/db/tuple"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
)

// Incremental grounding (the epoch Engine's delta path).
//
// Bottom-up grounding computes each first-order clause's groundings with one
// SQL query, which gives exact per-clause provenance: the only predicates
// that can change a clause's groundings are the ones appearing in its
// literals. Incremental caches every clause's canonical raw groundings; when
// evidence changes, only clauses whose provenance intersects the changed
// predicates re-run their SQL, the rest reuse the cache, and the merged
// sequence re-folds through the accumulator. Because each clause's raws are
// in canonical (aid-independent) order, the assembled Result is bit-identical
// to a full GroundBottomUp on the patched tables — and, by canon.go's
// argument, to a fresh Ground over the merged evidence.

// ClausePreds returns the grounding provenance of a first-order clause: the
// set of predicates its (non-builtin) literals read.
func ClausePreds(c *mln.Clause) map[*mln.Predicate]bool {
	out := make(map[*mln.Predicate]bool)
	for _, l := range c.Lits {
		if !l.IsBuiltinEq() {
			out[l.Pred] = true
		}
	}
	return out
}

// Incremental wraps a TableSet with the cached per-clause raw groundings
// needed to re-ground selectively. It is single-writer: the Engine serializes
// UpdateEvidence calls.
type Incremental struct {
	TS   *TableSet
	Opts Options

	perClause [][]rawClause
	perStats  []Stats
	provs     []map[*mln.Predicate]bool

	// asm maintains the canonical assembled Result under raw-level diffs,
	// making Reground O(diff + output) instead of O(total raws). The active
	// closure is a whole-MRF transform with no incremental form, so with
	// UseClosure the assembler stays nil and Reground re-folds from scratch.
	asm *incAssembler
}

// NewIncremental performs a full bottom-up grounding and retains the
// per-clause raw groundings for later selective re-grounds.
func NewIncremental(ctx context.Context, ts *TableSet, opts Options) (*Incremental, *Result, error) {
	n := len(ts.Prog.Clauses)
	inc := &Incremental{
		TS:        ts,
		Opts:      opts,
		perClause: make([][]rawClause, n),
		perStats:  make([]Stats, n),
		provs:     make([]map[*mln.Predicate]bool, n),
	}
	for i, c := range ts.Prog.Clauses {
		inc.provs[i] = ClausePreds(c)
	}
	if err := groundSelectedSQL(ctx, ts, opts, inc.perClause, inc.perStats, nil); err != nil {
		return nil, nil, err
	}
	if opts.UseClosure {
		return inc, assembleResult(ts, inc.perClause, inc.perStats, opts, false), nil
	}
	inc.asm = newIncAssembler(ts, n)
	inc.asm.build(inc.perClause)
	return inc, inc.asm.result(inc.perStats), nil
}

// RegroundInfo reports what a selective re-ground actually did.
type RegroundInfo struct {
	ClausesRerun   int   // grounding queries re-executed
	ClausesTotal   int   // first-order clauses in the program
	RerunJoinRows  int64 // join rows the re-run queries visited
	RawsAdded      int   // raw groundings present only in the new epoch
	RawsRemoved    int   // raw groundings present only in the old epoch
	TouchedAids    int   // distinct table atoms in changed raw groundings
	TouchedAtoms   int   // those that appear in the new MRF
	FixedCostDelta bool  // evidence-decided cost changed
}

// Reground re-runs the grounding queries of every clause whose provenance
// intersects changed, reusing cached raws for the rest, and returns the
// re-assembled Result plus the raw-level diff against the previous ground.
//
// touchedNew flags the new-MRF atom ids that occur in any added or removed
// raw grounding; atoms outside the flag set provably keep their connected
// component's local structure (see canon.go), which is what the component and
// partition repair layers rely on. On error (including cancellation) the
// cache is left on the previous ground, so the delta is retryable.
func (inc *Incremental) Reground(ctx context.Context, changed map[*mln.Predicate]bool) (*Result, []bool, RegroundInfo, error) {
	n := len(inc.TS.Prog.Clauses)
	info := RegroundInfo{ClausesTotal: n}
	sel := make([]bool, n)
	for i := range sel {
		for p := range inc.provs[i] {
			if changed[p] {
				sel[i] = true
				info.ClausesRerun++
				break
			}
		}
	}
	tmpClause := make([][]rawClause, n)
	tmpStats := make([]Stats, n)
	if err := groundSelectedSQL(ctx, inc.TS, inc.Opts, tmpClause, tmpStats, sel); err != nil {
		return nil, nil, info, err
	}

	// Raw-level diff of the re-run clauses, in the shared aid space (aids are
	// stable across ApplyDelta: the registry is append-only and re-inserted
	// closed tuples reuse their original aid).
	touchedAids := make(map[int64]struct{})
	newClause := make([][]rawClause, n)
	newStats := make([]Stats, n)
	copy(newClause, inc.perClause)
	copy(newStats, inc.perStats)
	type clauseDiff struct {
		idx            int
		added, removed []rawClause
	}
	var diffs []clauseDiff
	for i := range sel {
		if !sel[i] {
			continue
		}
		added, removed, fixed := diffRaws(inc.perClause[i], tmpClause[i], touchedAids)
		info.RawsAdded += len(added)
		info.RawsRemoved += len(removed)
		info.FixedCostDelta = info.FixedCostDelta || fixed
		info.RerunJoinRows += tmpStats[i].JoinRowsVisited
		if len(added) > 0 || len(removed) > 0 {
			diffs = append(diffs, clauseDiff{idx: i, added: added, removed: removed})
		}
		newClause[i] = tmpClause[i]
		newStats[i] = tmpStats[i]
	}
	info.TouchedAids = len(touchedAids)

	var res *Result
	if inc.asm != nil {
		for _, d := range diffs {
			inc.asm.apply(d.idx, d.added, d.removed)
		}
		res = inc.asm.result(newStats)
	} else {
		res = assembleResult(inc.TS, newClause, newStats, inc.Opts, false)
	}
	touchedNew := make([]bool, res.MRF.NumAtoms+1)
	for aid := range touchedAids {
		if id := res.AtomID[aid]; id != 0 {
			touchedNew[id] = true
			info.TouchedAtoms++
		}
	}
	inc.perClause = newClause
	inc.perStats = newStats
	return res, touchedNew, info, nil
}

// rawAidKey identifies a raw grounding within one TableSet's aid space.
func rawAidKey(r rawClause) string {
	var b strings.Builder
	b.Grow(len(r.aids) * 9)
	for i, aid := range r.aids {
		v := uint64(aid)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
		b.WriteByte(byte(v >> 32))
		b.WriteByte(byte(v >> 40))
		b.WriteByte(byte(v >> 48))
		b.WriteByte(byte(v >> 56))
		if r.pos[i] {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}
	return b.String()
}

// diffRaws multiset-diffs one clause's old and new raw groundings, adding the
// atoms of every differing raw to touched. It returns the raws present only
// on each side and whether an evidence-decided (empty) grounding changed.
func diffRaws(old, cur []rawClause, touched map[int64]struct{}) (added, removed []rawClause, fixedDelta bool) {
	counts := make(map[string]int, len(old))
	for _, r := range old {
		counts[rawAidKey(r)]++
	}
	mark := func(r rawClause) {
		for _, aid := range r.aids {
			touched[aid] = struct{}{}
		}
	}
	for _, r := range cur {
		k := rawAidKey(r)
		if counts[k] > 0 {
			counts[k]--
			continue
		}
		added = append(added, r)
		if len(r.aids) == 0 {
			fixedDelta = true
		}
		mark(r)
	}
	for _, r := range old {
		k := rawAidKey(r)
		if counts[k] > 0 {
			counts[k]--
			removed = append(removed, r)
			if len(r.aids) == 0 {
				fixedDelta = true
			}
			mark(r)
		}
	}
	return added, removed, fixedDelta
}

// AtomMaps builds the old-id -> new-id and new-id -> old-id translations
// between two Results of the same TableSet (0 = no counterpart). Both sides
// index atoms by the stable table aid.
func AtomMaps(old, cur *Result) (oldToNew, newToOld []mrf.AtomID) {
	oldToNew = make([]mrf.AtomID, old.MRF.NumAtoms+1)
	newToOld = make([]mrf.AtomID, cur.MRF.NumAtoms+1)
	for i := 1; i <= old.MRF.NumAtoms; i++ {
		if id := cur.AtomID[old.TableAid[i]]; id != 0 {
			oldToNew[i] = id
			newToOld[id] = mrf.AtomID(i)
		}
	}
	return oldToNew, newToOld
}

// DeltaUndo records how to roll an ApplyDelta back: the inverse evidence
// delta plus the reverse table operations, undone in reverse order.
type DeltaUndo struct {
	ts  *TableSet
	inv mln.Delta
	log []tableUndo
}

type tableUndo struct {
	kind     byte // 'u' update, 'i' insert (undo deletes), 'd' delete (undo reinserts)
	pred     *mln.Predicate
	aid      int64
	args     []int32
	oldTruth int64
}

// ApplyDelta patches the evidence and the predicate relations for one
// evidence delta:
//
//   - open predicates materialize every type-consistent atom, so a truth
//     change is an UPDATE of the row's truth column;
//   - closed predicates store evidence-true rows only (CWA), so setting a
//     tuple true INSERTs its row (reusing the atom's original aid if it was
//     ever materialized) and anything else DELETEs it.
//
// On success it returns the undo record; on failure it rolls back whatever
// was applied and the tables and evidence are as before. Deltas must stay
// inside the existing typed domains (mln.ErrConstantNotInDomain otherwise):
// new constants change the candidate-atom universe of open predicates, which
// is a full re-Ground, not a patch.
func (ts *TableSet) ApplyDelta(delta mln.Delta) (*DeltaUndo, error) {
	inv, err := ts.Ev.Apply(delta)
	if err != nil {
		return nil, err
	}
	undo := &DeltaUndo{ts: ts, inv: inv}
	for _, op := range delta.Ops {
		if err := ts.applyOp(op, undo); err != nil {
			if rbErr := undo.Rollback(); rbErr != nil {
				return nil, fmt.Errorf("applying delta: %w (rollback also failed: %v)", err, rbErr)
			}
			return nil, err
		}
	}
	return undo, nil
}

func (ts *TableSet) applyOp(op mln.DeltaOp, undo *DeltaUndo) error {
	pred := op.Pred
	t := ts.tables[pred]
	if t == nil {
		return fmt.Errorf("grounding: no relation for predicate %s", pred.Name)
	}
	if pred.Closed {
		// Explicit false on a closed predicate is the CWA default: row absent.
		want := op.Truth == mln.True
		aid, staged := ts.AidOf(pred, op.Args)
		present := staged && ts.truths[aid] == TruthTrue
		switch {
		case want && !present:
			if !staged {
				row := ts.stageAtom(pred, append([]int32(nil), op.Args...), TruthTrue)
				aid = int64(len(ts.atoms) - 1)
				if err := t.Insert(row); err != nil {
					ts.truths[aid] = TruthFalse // registry keeps the atom; no row
					return err
				}
			} else {
				row := make(tuple.Row, 0, pred.Arity()+2)
				row = append(row, tuple.I64(aid))
				for _, a := range op.Args {
					row = append(row, tuple.I64(int64(a)))
				}
				row = append(row, tuple.I64(TruthTrue))
				if err := t.Insert(row); err != nil {
					return err
				}
				ts.truths[aid] = TruthTrue
			}
			undo.log = append(undo.log, tableUndo{kind: 'i', pred: pred, aid: aid})
		case !want && present:
			if _, err := ts.DB.Exec(fmt.Sprintf("DELETE FROM %s WHERE aid = %d", TableName(pred), aid)); err != nil {
				return err
			}
			ts.truths[aid] = TruthFalse
			undo.log = append(undo.log, tableUndo{
				kind: 'd', pred: pred, aid: aid, args: append([]int32(nil), op.Args...),
			})
		}
		return nil
	}

	aid, ok := ts.AidOf(pred, op.Args)
	if !ok {
		return fmt.Errorf("grounding: atom %s%v not materialized; delta constants must predate Ground",
			pred.Name, op.Args)
	}
	newTruth := TruthUnknown
	switch op.Truth {
	case mln.True:
		newTruth = TruthTrue
	case mln.False:
		newTruth = TruthFalse
	}
	old := ts.truths[aid]
	if old == newTruth {
		return nil
	}
	if _, err := ts.DB.Exec(fmt.Sprintf("UPDATE %s SET truth = %d WHERE aid = %d",
		TableName(pred), newTruth, aid)); err != nil {
		return err
	}
	ts.truths[aid] = newTruth
	undo.log = append(undo.log, tableUndo{kind: 'u', pred: pred, aid: aid, oldTruth: old})
	return nil
}

// Inverse returns the evidence delta that undoes the applied one (the ops
// reversed, retractions re-asserting the old truth). Applying it through a
// fresh UpdateEvidence compensates a committed update — the serving layer
// uses it to back out of a partially-propagated multi-backend update.
func (u *DeltaUndo) Inverse() mln.Delta { return u.inv }

// Rollback restores the predicate relations and the evidence to their state
// before ApplyDelta. It is safe to call once, either because the caller's
// re-ground failed or because ApplyDelta itself aborted midway.
func (u *DeltaUndo) Rollback() error {
	for i := len(u.log) - 1; i >= 0; i-- {
		e := u.log[i]
		t := u.ts.tables[e.pred]
		switch e.kind {
		case 'u':
			if _, err := u.ts.DB.Exec(fmt.Sprintf("UPDATE %s SET truth = %d WHERE aid = %d",
				TableName(e.pred), e.oldTruth, e.aid)); err != nil {
				return err
			}
			u.ts.truths[e.aid] = e.oldTruth
		case 'i':
			if _, err := u.ts.DB.Exec(fmt.Sprintf("DELETE FROM %s WHERE aid = %d",
				TableName(e.pred), e.aid)); err != nil {
				return err
			}
			u.ts.truths[e.aid] = TruthFalse
		case 'd':
			row := make(tuple.Row, 0, e.pred.Arity()+2)
			row = append(row, tuple.I64(e.aid))
			for _, a := range e.args {
				row = append(row, tuple.I64(int64(a)))
			}
			row = append(row, tuple.I64(TruthTrue))
			if err := t.Insert(row); err != nil {
				return err
			}
			u.ts.truths[e.aid] = TruthTrue
		}
		u.log = u.log[:i]
	}
	if _, err := u.ts.Ev.Apply(u.inv); err != nil {
		return err
	}
	u.inv = mln.Delta{}
	return nil
}
