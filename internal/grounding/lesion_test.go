package grounding

import (
	"context"
	"fmt"
	"testing"

	"tuffy/internal/db"
	"tuffy/internal/db/plan"
	"tuffy/internal/mln"
)

// The Table 6 lesion study only makes sense if every optimizer
// configuration produces semantically identical groundings. This pins that
// invariant across all join algorithms and forced join order, on both test
// programs.
func TestGroundingInvariantUnderOptimizerLesions(t *testing.T) {
	configs := []struct {
		name string
		opts plan.Options
	}{
		{"full", plan.Options{}},
		{"forced-order", plan.Options{ForceJoinOrder: true}},
		{"hash-only", plan.Options{Algorithm: plan.JoinHashOnly}},
		{"merge-only", plan.Options{Algorithm: plan.JoinMergeOnly}},
		{"nlj-only", plan.Options{Algorithm: plan.JoinNestedLoopOnly}},
		{"no-pushdown", plan.Options{DisablePushdown: true}},
	}
	for _, prog := range []struct{ name, src, ev string }{
		{"smokes", tinyProg, tinyEv},
		{"figure1", mln.Figure1Program, mln.Figure1Evidence},
	} {
		var want []string
		for _, cfg := range configs {
			p, err := mln.ParseProgramString(prog.src)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := mln.ParseEvidenceString(p, prog.ev)
			if err != nil {
				t.Fatal(err)
			}
			d := db.Open(db.Config{Plan: cfg.opts})
			ts, err := BuildTables(d, p, ev)
			if err != nil {
				t.Fatal(err)
			}
			res, err := GroundBottomUp(context.Background(), ts, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", prog.name, cfg.name, err)
			}
			got := canon(ts, res)
			if want == nil {
				want = got
				continue
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s: config %s changed the grounding:\n got %v\nwant %v",
					prog.name, cfg.name, got, want)
			}
		}
	}
}

// Tiny buffer pools must not change grounding results, only I/O counts —
// the grounding queries stream through the pool correctly under memory
// pressure.
func TestGroundingUnderTinyBufferPool(t *testing.T) {
	p, err := mln.ParseProgramString(mln.Figure1Program)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mln.ParseEvidenceString(p, mln.Figure1Evidence)
	if err != nil {
		t.Fatal(err)
	}
	d := db.Open(db.Config{BufferPoolPages: 2})
	ts, err := BuildTables(d, p, ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}

	p2, _ := mln.ParseProgramString(mln.Figure1Program)
	ev2, _ := mln.ParseEvidenceString(p2, mln.Figure1Evidence)
	d2 := db.Open(db.Config{})
	ts2, _ := BuildTables(d2, p2, ev2)
	res2, err := GroundBottomUp(context.Background(), ts2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(canon(ts, res)) != fmt.Sprint(canon(ts2, res2)) {
		t.Fatal("buffer pool size changed grounding results")
	}
}
