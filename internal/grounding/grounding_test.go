package grounding

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"tuffy/internal/db"
	"tuffy/internal/mln"
)

// setup parses a program + evidence and builds predicate tables.
func setup(t *testing.T, progSrc, evSrc string) *TableSet {
	t.Helper()
	prog, err := mln.ParseProgramString(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mln.ParseEvidenceString(prog, evSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := db.Open(db.Config{})
	ts, err := BuildTables(d, prog, ev)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// canon renders a grounding result as a sorted list of clause strings with
// human-readable atoms, for cross-grounder comparison.
func canon(ts *TableSet, res *Result) []string {
	var out []string
	for _, c := range res.MRF.Clauses {
		lits := make([]string, len(c.Lits))
		for i, l := range c.Lits {
			atom := res.MRF.Atoms[abs32(l)]
			s := atom.Format(ts.Prog.Syms)
			if l < 0 {
				s = "!" + s
			}
			lits[i] = s
		}
		sort.Strings(lits)
		out = append(out, fmt.Sprintf("%g | %s", c.Weight, strings.Join(lits, " v ")))
	}
	sort.Strings(out)
	return out
}

func abs32(l int32) int32 {
	if l < 0 {
		return -l
	}
	return l
}

const tinyProg = `
*friend(person, person)
smokes(person)
cancer(person)
1.5 smokes(x), friend(x, y) => smokes(y)
2 smokes(x) => cancer(x)
`

const tinyEv = `
friend(Anna, Bob)
friend(Bob, Carl)
smokes(Anna)
`

func TestBuildTablesShape(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	smokes := ts.Prog.MustPredicate("smokes")
	friend := ts.Prog.MustPredicate("friend")
	// 3 persons -> smokes has 3 rows (open), friend has 2 (closed, evidence).
	if got := ts.Table(smokes).RowCount(); got != 3 {
		t.Fatalf("smokes rows = %d", got)
	}
	if got := ts.Table(friend).RowCount(); got != 2 {
		t.Fatalf("friend rows = %d", got)
	}
	if ts.NumAtoms() != 2+3+3 {
		t.Fatalf("NumAtoms = %d", ts.NumAtoms())
	}
	// Evidence truth recorded on the open predicate.
	anna, _ := ts.Prog.Syms.Lookup("Anna")
	aid, ok := ts.AidOf(smokes, []int32{anna})
	if !ok || ts.TruthOf(aid) != TruthTrue {
		t.Fatalf("smokes(Anna) truth wrong (ok=%v)", ok)
	}
}

func TestBottomUpSmokesChain(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := canon(ts, res)
	// Expected clauses after evidence pruning:
	// F1 groundings surviving: (x=Anna,y=Bob): smokes(Anna) true => !smokes(Anna) dropped => smokes(Bob)
	//                          (x=Bob,y=Carl): !smokes(Bob) v smokes(Carl)
	// F2: !smokes(p) v cancer(p) for each person; x=Anna: smokes(Anna) true so
	//     literal dropped -> cancer(Anna); Bob, Carl full clauses.
	want := []string{
		"1.5 | !smokes(Bob) v smokes(Carl)",
		"1.5 | smokes(Bob)",
		"2 | !smokes(Bob) v cancer(Bob)",
		"2 | !smokes(Carl) v cancer(Carl)",
		"2 | cancer(Anna)",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("clauses:\n got %v\nwant %v", got, want)
	}
}

func TestTopDownMatchesBottomUp(t *testing.T) {
	for _, tc := range []struct{ name, prog, ev string }{
		{"smokes", tinyProg, tinyEv},
		{"figure1", mln.Figure1Program, mln.Figure1Evidence},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts1 := setup(t, tc.prog, tc.ev)
			bu, err := GroundBottomUp(context.Background(), ts1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ts2 := setup(t, tc.prog, tc.ev)
			td, err := GroundTopDown(context.Background(), ts2, Options{})
			if err != nil {
				t.Fatal(err)
			}
			g1, g2 := canon(ts1, bu), canon(ts2, td)
			if fmt.Sprint(g1) != fmt.Sprint(g2) {
				t.Fatalf("grounder mismatch:\nbottom-up: %v\ntop-down:  %v", g1, g2)
			}
			if bu.MRF.FixedCost != td.MRF.FixedCost {
				t.Fatalf("fixed cost %v != %v", bu.MRF.FixedCost, td.MRF.FixedCost)
			}
		})
	}
}

func TestTopDownMatchesBottomUpWithClosure(t *testing.T) {
	ts1 := setup(t, tinyProg, tinyEv)
	bu, err := GroundBottomUp(context.Background(), ts1, Options{UseClosure: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := setup(t, tinyProg, tinyEv)
	td, err := GroundTopDown(context.Background(), ts2, Options{UseClosure: true})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(canon(ts1, bu)) != fmt.Sprint(canon(ts2, td)) {
		t.Fatal("closure results differ between grounders")
	}
}

func TestBuiltinEqualityPruning(t *testing.T) {
	// F1 of Figure 1: cat(p,c1), cat(p,c2) => c1 = c2. With 2 categories and
	// 1 unlabeled paper, surviving groundings are the ordered pairs of
	// distinct categories: (A,B) and (B,A) both give the same literal set;
	// the accumulator sums them: weight 10.
	ts := setup(t, `
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
`, `
!cat(P1, X)
cat(P2, A)   // known paper narrows nothing; P1 has categories A,B,X via domain
`)
	// domain(category) = {X, A}; P1 and P2 papers.
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := canon(ts, res)
	for _, s := range got {
		if strings.Contains(s, "c1 = c2") {
			t.Fatalf("builtin literal leaked into ground clause: %s", s)
		}
	}
	// Each surviving clause must mention two distinct categories of one paper.
	for _, s := range got {
		if !strings.Contains(s, "!cat(") {
			t.Fatalf("unexpected clause %s", s)
		}
	}
}

func TestNegativeWeightClause(t *testing.T) {
	ts := setup(t, `
cat(paper, category)
-1 cat(p, "Net")
`, `
cat(P1, DB)
`)
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Categories: Net, DB. Papers: P1. cat(P1,Net) unknown -> one clause.
	if len(res.MRF.Clauses) != 1 {
		t.Fatalf("clauses = %d", len(res.MRF.Clauses))
	}
	c := res.MRF.Clauses[0]
	if c.Weight != -1 || len(c.Lits) != 1 || c.Lits[0] < 0 {
		t.Fatalf("clause = %+v", c)
	}
}

func TestEvidenceDecidedClauseFixedCost(t *testing.T) {
	// p(x) => q(x) with p(A) true and q(A) false: clause violated by
	// evidence, contributing fixed cost.
	ts := setup(t, `
p(thing)
q(thing)
3 p(x) => q(x)
`, `
p(A)
!q(A)
`)
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MRF.FixedCost != 3 {
		t.Fatalf("fixed cost = %v", res.MRF.FixedCost)
	}
	if len(res.MRF.Clauses) != 0 {
		t.Fatalf("clauses = %v", res.MRF.Clauses)
	}
}

func TestExistentialGrounding(t *testing.T) {
	// Every paper must have an author (hard). P1 has a known author; P2's
	// potential authors are unknown; P3 has an evidence-false author pair
	// only.
	ts := setup(t, `
paper(paperid)
wrote(author, paperid)
paper(p) => EXIST x wrote(x, p).
`, `
paper(P1)
paper(P2)
wrote(A1, P1)
!wrote(A1, P2)
`)
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := canon(ts, res)
	// For P1: wrote(A1,P1) true => clause satisfied, pruned.
	// For P2: paper(P2) evidence-true => !paper(P2) dropped;
	//         wrote(A1,P2) false dropped; no unknown witnesses remain...
	// but wait: paper is open, so paper table has P1,P2 as evidence-true.
	// The clause for P2 reduces to the empty disjunction => hard violated.
	// Hard fixed violations make the whole instance infeasible; we only
	// check the grounding shape here.
	for _, s := range got {
		if strings.Contains(s, "P1)") && strings.Contains(s, "wrote") {
			t.Fatalf("P1's satisfied existential clause should be pruned: %v", got)
		}
	}
	_ = got
}

func TestExistentialWithOpenAuthors(t *testing.T) {
	ts := setup(t, `
paper(paperid)
wrote(author, paperid)
paper(p) => EXIST x wrote(x, p).
`, `
paper(P1)
wrote(A1, P2)   // establishes authors domain {A1}; P2 paper
`)
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := canon(ts, res)
	// P1: witness candidates = wrote(A1,P1) (unknown) -> clause wrote(A1,P1).
	// P2: wrote(A1,P2) true -> pruned.
	want1 := "Inf | wrote(A1, P1)"
	found := false
	for _, s := range got {
		if strings.Contains(s, "+Inf") || strings.Contains(s, "Inf") {
			if strings.Contains(s, "wrote(A1, P1)") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("missing %q in %v", want1, got)
	}
}

func TestExistentialTopDownAgrees(t *testing.T) {
	prog := `
paper(paperid)
wrote(author, paperid)
2 paper(p) => EXIST x wrote(x, p)
`
	ev := `
paper(P1)
paper(P2)
wrote(A1, P2)
wrote(A2, P3)
`
	ts1 := setup(t, prog, ev)
	bu, err := GroundBottomUp(context.Background(), ts1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := setup(t, prog, ev)
	td, err := GroundTopDown(context.Background(), ts2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := canon(ts1, bu), canon(ts2, td)
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Fatalf("existential mismatch:\nbottom-up: %v\ntop-down:  %v", g1, g2)
	}
}

func TestUnsafeExistentialRejected(t *testing.T) {
	prog, err := mln.ParseProgramString(`
p(thing)
r(author, thing)
1 p(x) => EXIST a r(a, z)
`)
	if err != nil {
		t.Fatal(err)
	}
	ev := mln.NewEvidence(prog)
	_ = ev.AssertNames("p", []string{"T1"}, false)
	_ = ev.AssertNames("r", []string{"A", "T1"}, false)
	d := db.Open(db.Config{})
	ts, err := BuildTables(d, prog, ev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GroundBottomUp(context.Background(), ts, Options{}); err == nil {
		t.Fatal("unsafe existential clause accepted")
	}
	if _, err := GroundTopDown(context.Background(), ts, Options{}); err == nil {
		t.Fatal("unsafe existential clause accepted by top-down")
	}
}

func TestDuplicateGroundingsSumWeights(t *testing.T) {
	// cat(p,c1), cat(p,c2) => c1 = c2 with bindings (A,B) and (B,A) gives
	// the same literal set twice: the weight doubles (MLN semantics: each
	// grounding is its own clause).
	ts := setup(t, `
cat(paper, category)
5 cat(p, c1), cat(p, c2) => c1 = c2
`, `
cat(P9, A)
!cat(P1, B)
`)
	// categories {A, B}; papers {P9, P1}.
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawDoubled := false
	for _, c := range res.MRF.Clauses {
		if c.Weight == 10 {
			sawDoubled = true
		}
	}
	if !sawDoubled {
		t.Fatalf("expected a weight-10 clause from symmetric bindings: %v", canon(ts, res))
	}
}

func TestTautologyDropped(t *testing.T) {
	// p(x) v !p(x) is a tautology after grounding; must be dropped.
	ts := setup(t, `
p(thing)
1 p(x) v !p(x)
`, `
!p(A)
`)
	// p(A) evidence-false: positive lit pruned? positive lit condition is
	// truth <> true (false passes); negative lit condition truth <> false
	// prunes. So SQL returns nothing for this grounding anyway. Use an
	// unknown atom: add another constant via domain decl.
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.MRF.Clauses {
		if len(c.Lits) == 2 && abs32(c.Lits[0]) == abs32(c.Lits[1]) {
			t.Fatalf("tautology kept: %+v", c)
		}
	}
}

func TestActiveClosure(t *testing.T) {
	// Clauses: (a) [violated under all-false: active seed]
	//          (!a v b) [negated lit on a: active once a activates]
	//          (!c v d) [c never activated: dropped]
	raws := []rawClause{
		{weight: 1, aids: []int64{1}, pos: []bool{true}},
		{weight: 1, aids: []int64{1, 2}, pos: []bool{false, true}},
		{weight: 1, aids: []int64{3, 4}, pos: []bool{false, true}},
	}
	got := activeClosure(raws)
	if len(got) != 2 {
		t.Fatalf("closure kept %d clauses, want 2", len(got))
	}
}

func TestActiveClosureKeepsNegativeAndHard(t *testing.T) {
	raws := []rawClause{
		{weight: -1, aids: []int64{7, 8}, pos: []bool{false, false}},
		{weight: math.Inf(1), aids: []int64{9}, pos: []bool{false}},
	}
	got := activeClosure(raws)
	if len(got) != 2 {
		t.Fatalf("closure dropped negative/hard clauses: %d", len(got))
	}
}

func TestClosureReducesClauseCount(t *testing.T) {
	// A chain smokes(x), friend(x,y) => smokes(y) with no smoker evidence:
	// nothing is violated under all-false, so closure drops everything
	// except seeds; with a smoker, the chain activates transitively.
	ts := setup(t, tinyProg, tinyEv)
	full, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := setup(t, tinyProg, tinyEv)
	closed, err := GroundBottomUp(context.Background(), ts2, Options{UseClosure: true})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Stats.NumClauses > full.Stats.NumClauses {
		t.Fatalf("closure grew the clause set: %d > %d", closed.Stats.NumClauses, full.Stats.NumClauses)
	}
}

func TestCompileClauseSQLShape(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	clause := ts.Prog.Clauses[0] // smokes(x), friend(x,y) => smokes(y)
	comp, err := CompileClauseSQL(ts, clause)
	if err != nil {
		t.Fatal(err)
	}
	sqlUp := strings.ToUpper(comp.SQL)
	if !strings.HasPrefix(sqlUp, "SELECT") {
		t.Fatalf("sql = %s", comp.SQL)
	}
	if !strings.Contains(comp.SQL, "r_smokes") || !strings.Contains(comp.SQL, "r_friend") {
		t.Fatalf("missing tables: %s", comp.SQL)
	}
	if !strings.Contains(sqlUp, "WHERE") {
		t.Fatalf("missing WHERE: %s", comp.SQL)
	}
	if len(comp.ULits) != 3 {
		t.Fatalf("ULits = %d", len(comp.ULits))
	}
}

func TestGroundingStats(t *testing.T) {
	ts := setup(t, tinyProg, tinyEv)
	res, err := GroundBottomUp(context.Background(), ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.NumAtoms != 8 {
		t.Fatalf("NumAtoms = %d", s.NumAtoms)
	}
	if s.NumClauses != 5 {
		t.Fatalf("NumClauses = %d", s.NumClauses)
	}
	if s.NumUsedAtoms == 0 || s.NumUsedAtoms > s.NumAtoms {
		t.Fatalf("NumUsedAtoms = %d", s.NumUsedAtoms)
	}
	if s.JoinRowsVisited <= 0 {
		t.Fatalf("JoinRowsVisited = %d", s.JoinRowsVisited)
	}
}

func TestTopDownVisitsMoreRows(t *testing.T) {
	// The nested-loop baseline touches at least as many tuples as the
	// optimized bottom-up grounder on a selective join.
	prog := `
*link(node, node)
val(node)
1 val(x), link(x, y) => val(y)
`
	var ev strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&ev, "link(N%d, N%d)\n", i, (i+1)%60)
	}
	ev.WriteString("val(N0)\n")
	ts1 := setup(t, prog, ev.String())
	bu, err := GroundBottomUp(context.Background(), ts1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := setup(t, prog, ev.String())
	td, err := GroundTopDown(context.Background(), ts2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if td.Stats.JoinRowsVisited < bu.Stats.JoinRowsVisited {
		t.Fatalf("top-down visited %d rows, bottom-up %d — expected top-down >= bottom-up",
			td.Stats.JoinRowsVisited, bu.Stats.JoinRowsVisited)
	}
}
