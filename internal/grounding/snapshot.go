package grounding

import (
	"fmt"

	"tuffy/internal/db"
	"tuffy/internal/db/tuple"
	"tuffy/internal/mln"
)

// Snapshot export/import: the pieces of grounded state the engine's
// durability layer persists so a reopened DataDir can serve without
// re-running grounding SQL.
//
// The atom registry (aid -> atom, truth) is what makes a restore exact:
// aids are assigned in insertion order, so re-staging the registry in aid
// order reproduces the identical aid space, and the cached per-clause raw
// groundings (which reference aids) remain valid. Physical row order in
// the rebuilt predicate tables may differ from the original build, but
// canon.go's canonicalization makes every later Reground independent of
// row and join order, so the engine stays bit-identical to a never-crashed
// instance.

// SnapAtom is one registry entry: the predicate (as an index into
// Program.Preds), the argument constants, and the recorded evidence truth.
type SnapAtom struct {
	Pred  int32
	Args  []int32
	Truth int64
}

// ExportAtoms dumps the atom registry in aid order (aid 1 first).
func (ts *TableSet) ExportAtoms() ([]SnapAtom, error) {
	idx := make(map[*mln.Predicate]int32, len(ts.Prog.Preds))
	for i, p := range ts.Prog.Preds {
		idx[p] = int32(i)
	}
	out := make([]SnapAtom, 0, len(ts.atoms)-1)
	for aid := 1; aid < len(ts.atoms); aid++ {
		a := ts.atoms[aid]
		pi, ok := idx[a.Pred]
		if !ok {
			return nil, fmt.Errorf("grounding: registry atom %d references a predicate outside the program", aid)
		}
		out = append(out, SnapAtom{Pred: pi, Args: a.Args, Truth: ts.truths[aid]})
	}
	return out, nil
}

// SnapRaw is one cached raw grounding: the clause weight and its literals
// encoded as aid<<1|positive.
type SnapRaw struct {
	Weight float64
	Lits   []uint64
}

// ExportRaws dumps the cached per-clause raw groundings and their
// grounding stats, in first-order-clause order.
func (inc *Incremental) ExportRaws() ([][]SnapRaw, []Stats) {
	out := make([][]SnapRaw, len(inc.perClause))
	for i, raws := range inc.perClause {
		rs := make([]SnapRaw, len(raws))
		for j, r := range raws {
			lits := make([]uint64, len(r.aids))
			for k, aid := range r.aids {
				v := uint64(aid) << 1
				if r.pos[k] {
					v |= 1
				}
				lits[k] = v
			}
			rs[j] = SnapRaw{Weight: r.weight, Lits: lits}
		}
		out[i] = rs
	}
	stats := make([]Stats, len(inc.perStats))
	copy(stats, inc.perStats)
	return out, stats
}

// RestoreTables rebuilds a TableSet from a snapshot registry: the
// predicate relations are recreated and the atoms re-staged in aid order,
// reproducing the exact aid space of the snapshotted instance without any
// domain enumeration. ev must be the merged evidence the snapshot was
// taken under. Closed predicates get rows only for evidence-true atoms
// (the CWA invariant ApplyDelta maintains); open predicates get every
// registry atom with its recorded truth.
func RestoreTables(d *db.DB, prog *mln.Program, ev *mln.Evidence, atoms []SnapAtom) (*TableSet, error) {
	ts := &TableSet{
		DB:     d,
		Prog:   prog,
		Ev:     ev,
		tables: make(map[*mln.Predicate]*db.Table),
		aidOf:  make(map[*mln.Predicate]map[string]int64),
		atoms:  make([]mln.GroundAtom, 1),
		truths: make([]int64, 1),
	}
	fail := func(err error) (*TableSet, error) {
		ts.Drop()
		return nil, err
	}
	for _, pred := range prog.Preds {
		t, err := d.CreateTable(TableName(pred), predTableSchema(pred))
		if err != nil {
			return fail(err)
		}
		ts.tables[pred] = t
		ts.aidOf[pred] = make(map[string]int64)
	}
	staged := make(map[*mln.Predicate][]tuple.Row)
	for _, sa := range atoms {
		if int(sa.Pred) < 0 || int(sa.Pred) >= len(prog.Preds) {
			return fail(fmt.Errorf("grounding: snapshot atom references predicate %d of %d", sa.Pred, len(prog.Preds)))
		}
		pred := prog.Preds[sa.Pred]
		if len(sa.Args) != pred.Arity() {
			return fail(fmt.Errorf("grounding: snapshot atom for %s has %d args", pred.Name, len(sa.Args)))
		}
		row := ts.stageAtom(pred, sa.Args, sa.Truth)
		if pred.Closed && sa.Truth != TruthTrue {
			continue // registry-only: no relation row under the CWA
		}
		staged[pred] = append(staged[pred], row)
		if len(staged[pred]) >= loadChunk {
			if err := ts.tables[pred].InsertMany(staged[pred]); err != nil {
				return fail(err)
			}
			staged[pred] = staged[pred][:0]
		}
	}
	for pred, rows := range staged {
		if err := ts.tables[pred].InsertMany(rows); err != nil {
			return fail(err)
		}
	}
	if err := d.Pool().FlushAll(); err != nil {
		return fail(err)
	}
	return ts, nil
}

// RestoreIncremental rebuilds the incremental grounder from snapshot raws
// without re-running any grounding SQL: the cached per-clause raws are
// decoded against ts's (restored, identical) aid space and folded through
// the incremental assembler. The returned Result is the assembled network
// — bit-identical, by canonicalization, to the snapshotted one — which
// callers may use to cross-check the snapshot's own MRF.
func RestoreIncremental(ts *TableSet, opts Options, raws [][]SnapRaw, stats []Stats) (*Incremental, *Result, error) {
	n := len(ts.Prog.Clauses)
	if len(raws) != n || len(stats) != n {
		return nil, nil, fmt.Errorf("grounding: snapshot has %d clause raw sets for %d clauses", len(raws), n)
	}
	inc := &Incremental{
		TS:        ts,
		Opts:      opts,
		perClause: make([][]rawClause, n),
		perStats:  stats,
		provs:     make([]map[*mln.Predicate]bool, n),
	}
	for i, c := range ts.Prog.Clauses {
		inc.provs[i] = ClausePreds(c)
	}
	maxAid := int64(len(ts.atoms) - 1)
	for i, rs := range raws {
		dec := make([]rawClause, len(rs))
		for j, r := range rs {
			rc := rawClause{weight: r.Weight, aids: make([]int64, len(r.Lits)), pos: make([]bool, len(r.Lits))}
			for k, v := range r.Lits {
				aid := int64(v >> 1)
				if aid < 1 || aid > maxAid {
					return nil, nil, fmt.Errorf("grounding: snapshot raw references aid %d of %d", aid, maxAid)
				}
				rc.aids[k] = aid
				rc.pos[k] = v&1 == 1
			}
			dec[j] = rc
		}
		inc.perClause[i] = dec
	}
	if opts.UseClosure {
		return inc, assembleResult(ts, inc.perClause, inc.perStats, opts, false), nil
	}
	inc.asm = newIncAssembler(ts, n)
	inc.asm.build(inc.perClause)
	return inc, inc.asm.result(inc.perStats), nil
}
