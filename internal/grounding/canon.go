package grounding

import (
	"sort"
	"strings"
)

// Canonicalization of raw groundings.
//
// Table aids are assigned in insertion order, so two TableSets encoding the
// same logical evidence — one built fresh, one patched by ApplyDelta — number
// the same ground atoms differently, and the SQL engine may also return join
// rows in different heap orders. The MRF, however, must be a pure function of
// the logical content: the epoch-based Engine promises that an incremental
// update is bit-identical to a full re-Ground on the merged evidence.
//
// canonRaws establishes that by sorting each clause's raw groundings (and the
// literals inside each grounding) by aid-independent atom descriptors
// (predicate id, argument constants, sign). Downstream, the accumulator
// assigns dense MRF atom ids in first-use order over this canonical sequence,
// so every id, clause, weight and Atoms[] entry depends only on the logical
// ground clauses — not on aid numbering or row order.

// atomDescKey renders the aid-independent descriptor of one ground atom
// (predicate id then argument constants). Descriptors of distinct atoms
// never collide, and two descriptors with different predicates differ
// within their first four bytes, so lexicographic order is well-defined
// across arities.
func atomDescKey(ts *TableSet, aid int64) string {
	var b strings.Builder
	a := ts.Atom(aid)
	b.Grow(4 + 4*len(a.Args))
	v := uint32(a.Pred.ID)
	b.WriteByte(byte(v >> 24))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v))
	for _, c := range a.Args {
		u := uint32(c)
		b.WriteByte(byte(u >> 24))
		b.WriteByte(byte(u >> 16))
		b.WriteByte(byte(u >> 8))
		b.WriteByte(byte(u))
	}
	return b.String()
}

// litDescKey renders an aid-independent descriptor for one literal:
// predicate id, argument constants, and sign, as a byte string that sorts
// consistently across TableSets.
func litDescKey(b *strings.Builder, ts *TableSet, aid int64, positive bool) {
	a := ts.Atom(aid)
	v := uint32(a.Pred.ID)
	b.WriteByte(byte(v >> 24))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v))
	for _, c := range a.Args {
		u := uint32(c)
		b.WriteByte(byte(u >> 24))
		b.WriteByte(byte(u >> 16))
		b.WriteByte(byte(u >> 8))
		b.WriteByte(byte(u))
	}
	if positive {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

// sortRawLits orders the literals of one raw grounding by descriptor key.
// Clauses are short, so insertion sort over freshly built keys is fine.
func sortRawLits(ts *TableSet, r *rawClause) {
	if len(r.aids) < 2 {
		return
	}
	keys := make([]string, len(r.aids))
	for i, aid := range r.aids {
		var b strings.Builder
		litDescKey(&b, ts, aid, r.pos[i])
		keys[i] = b.String()
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
			r.aids[j], r.aids[j-1] = r.aids[j-1], r.aids[j]
			r.pos[j], r.pos[j-1] = r.pos[j-1], r.pos[j]
		}
	}
}

// canonRaws puts one clause's raw groundings into canonical order: literals
// within each grounding sorted by descriptor, groundings sorted by their
// concatenated descriptors. The sort is stable, so duplicate groundings
// (which the accumulator later merges by summing weights) keep a
// deterministic relative order.
func canonRaws(ts *TableSet, raws []rawClause) []rawClause {
	out, _ := canonRawsKeys(ts, raws)
	return out
}

// canonRawsKeys is canonRaws returning the per-grounding sort keys alongside,
// so partitioned grounding can canonicalize each hash range in parallel and
// then stably merge the sorted ranges by key (mergeCanon) instead of paying
// one serial key-building pass over the whole clause.
func canonRawsKeys(ts *TableSet, raws []rawClause) ([]rawClause, []string) {
	if len(raws) == 0 {
		return raws, nil
	}
	keys := make([]string, len(raws))
	for i := range raws {
		sortRawLits(ts, &raws[i])
		var b strings.Builder
		b.Grow(len(raws[i].aids) * 10)
		for j, aid := range raws[i].aids {
			litDescKey(&b, ts, aid, raws[i].pos[j])
		}
		keys[i] = b.String()
	}
	idx := make([]int, len(raws))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]rawClause, len(raws))
	outKeys := make([]string, len(raws))
	for i, j := range idx {
		out[i] = raws[j]
		outKeys[i] = keys[j]
	}
	return out, outKeys
}

// mergeCanon stably merges per-range canonical groundings by key, ties going
// to the earlier range. A stable sort of a concatenation equals the stable
// merge of its stably-sorted parts, so the result is bit-for-bit what
// canonRaws would return on the ranges' concatenation — without rebuilding a
// single key.
func mergeCanon(parts [][]rawClause, keys [][]string) []rawClause {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]rawClause, 0, total)
	heads := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for r := range parts {
			if heads[r] >= len(parts[r]) {
				continue
			}
			if best < 0 || keys[r][heads[r]] < keys[best][heads[best]] {
				best = r
			}
		}
		out = append(out, parts[best][heads[best]])
		heads[best]++
	}
	return out
}
