// Marginal inference with MC-SAT (Appendix A.5): instead of one most
// likely world, estimate per-atom probabilities for the Figure 1 paper-
// classification program.
//
//	go run ./examples/marginal
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"tuffy"
	"tuffy/internal/mln"
)

func main() {
	ctx := context.Background()

	prog, err := tuffy.LoadProgramString(mln.Figure1Program)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := tuffy.LoadEvidenceString(prog, mln.Figure1Evidence)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := tuffy.Open(prog, ev, tuffy.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Ground(ctx); err != nil {
		log.Fatal(err)
	}
	res, err := eng.InferMarginal(ctx, tuffy.InferOptions{Seed: 11, Samples: 800})
	if err != nil {
		log.Fatal(err)
	}

	// Show category marginals, highest first.
	cat := prog.MustPredicate("cat")
	var rows []tuffy.AtomProb
	for _, ap := range res.Probs {
		if ap.Atom.Pred == cat {
			rows = append(rows, ap)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].P > rows[j].P })
	fmt.Println("Pr[cat(paper, category)] estimates (MC-SAT, 800 samples):")
	for _, ap := range rows {
		fmt.Printf("  %.3f  %s\n", ap.P, eng.FormatAtom(ap.Atom))
	}
	fmt.Println("\nhigh-probability labels follow the citation/co-author structure;")
	fmt.Println("the negative-weight rule keeps Networking improbable (F5).")
}
