// Entity resolution (the paper's ER workload): deduplicate citation
// records connected by a similarity relation, with symmetry and
// transitivity rules that make the MRF one dense component. Demonstrates
// MRF partitioning with a memory budget and Gauss-Seidel partition-aware
// search (Section 3.4).
//
//	go run ./examples/entityres
package main

import (
	"fmt"
	"log"

	"tuffy"
	"tuffy/internal/datagen"
)

func main() {
	ds := datagen.ER(datagen.ERConfig{Records: 40, Groups: 10, Seed: 3})
	fmt.Printf("ER dataset: %d similarity pairs\n", ds.Ev.Total())

	// Unbudgeted: the single dense component is searched whole.
	whole := tuffy.New(ds.Prog, ds.Ev, tuffy.Config{MaxFlips: 200_000, Seed: 3})
	resW, err := whole.InferMAP()
	if err != nil {
		log.Fatal(err)
	}
	ms, _ := whole.MRFStats()
	fmt.Printf("\nwhole component: %d atoms, %d clauses, search footprint %d bytes\n",
		ms.NumAtoms, ms.NumClauses, ms.SearchBytes)
	fmt.Printf("  cost %.1f with %d partition(s), %d cut clauses\n",
		resW.Cost, resW.Partitions, resW.CutClauses)

	// Budgeted: force a split and search with Gauss-Seidel. On dense ER
	// the cut is large, so convergence degrades — the trade-off in the
	// paper's Figure 6 (ER panel).
	budget := ms.SearchBytes / 3
	split := tuffy.New(ds.Prog, ds.Ev, tuffy.Config{
		MaxFlips:          200_000,
		Seed:              3,
		MemoryBudgetBytes: budget,
		GaussSeidelRounds: 4,
	})
	resS, err := split.InferMAP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudget %d bytes: %d partitions, %d cut clauses\n",
		budget, resS.Partitions, resS.CutClauses)
	fmt.Printf("  cost %.1f\n", resS.Cost)
	if resS.Cost > resW.Cost {
		fmt.Println("  dense graphs pay for partitioning (the paper's Fig. 6 ER panel)")
	} else {
		fmt.Println("  on this synthetic ER the conditioned subproblems are easier, so")
		fmt.Println("  Gauss-Seidel wins despite the cut — see docs/BENCHMARKS.md for discussion")
	}

	// Report the merged groups found by the whole-component run.
	same := ds.Prog.MustPredicate("sameBib")
	merged := 0
	for _, a := range resW.TrueAtoms {
		if a.Pred == same {
			merged++
		}
	}
	fmt.Printf("\nmerged pairs inferred: %d\n", merged)
}
