// Information extraction (the paper's IE workload): segment thousands of
// independent token chains into fields. The MRF shatters into thousands of
// tiny components — the best case for batch loading and parallel
// component-aware search (Sections 3.3, Table 7).
//
//	go run ./examples/infoextract
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"tuffy"
	"tuffy/internal/datagen"
)

func main() {
	ds := datagen.IE(datagen.IEConfig{Chains: 1200, Seed: 5})
	fmt.Printf("IE dataset: %d evidence tuples\n", ds.Ev.Total())

	run := func(threads int) (float64, time.Duration, int) {
		sys := tuffy.New(ds.Prog, ds.Ev, tuffy.Config{
			MaxFlips:    300_000,
			Seed:        5,
			Parallelism: threads,
		})
		res, err := sys.InferMAP()
		if err != nil {
			log.Fatal(err)
		}
		return res.Cost, res.SearchTime, res.Partitions
	}

	c1, t1, parts := run(1)
	fmt.Printf("\n1 worker : cost %.1f in %v across %d components\n", c1, t1.Round(time.Millisecond), parts)

	n := runtime.NumCPU()
	cN, tN, _ := run(n)
	fmt.Printf("%d workers: cost %.1f in %v\n", n, cN, tN.Round(time.Millisecond))
	if tN < t1 {
		fmt.Printf("parallel speedup: %.1fx (paper Table 7 reports ~6x on 8 cores)\n",
			float64(t1)/float64(tN))
	}
	if cN != c1 {
		fmt.Println("note: costs differ slightly across thread counts only if budgets round differently")
	}
}
