// Serve: ground once, answer many concurrent inference queries — the
// Engine/Query split that turns the reproduction into a servable system.
// One Engine grounds the Figure 1 network, then a pool of goroutines fires
// mixed MAP and marginal queries at it concurrently, each with its own
// seed, mode and timeout. A query canceled by its deadline still returns
// its best-so-far answer (tuffy.ErrCanceled).
//
//	go run ./examples/serve
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"tuffy"
	"tuffy/internal/mln"
)

func main() {
	ctx := context.Background()

	prog, err := tuffy.LoadProgramString(mln.Figure1Program)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := tuffy.LoadEvidenceString(prog, mln.Figure1Evidence)
	if err != nil {
		log.Fatal(err)
	}

	// The expensive phase: parse, load evidence, ground in the embedded
	// RDBMS. This publishes the first epoch — an immutable snapshot serving
	// any number of concurrent queries (UpdateEvidence would publish the
	// next one without disturbing them).
	eng, err := tuffy.Open(prog, ev, tuffy.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Ground(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grounded in %v; serving 8 concurrent queries\n\n", eng.GroundTime().Round(time.Millisecond))

	type answer struct {
		id       int
		kind     string
		cost     float64
		trueN    int
		canceled bool
		elapsed  time.Duration
	}

	var wg sync.WaitGroup
	answers := make([]answer, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			// Every query gets its own deadline and options; none of them
			// shares mutable state with the others.
			qctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			if i%4 == 3 {
				res, err := eng.InferMarginal(qctx, tuffy.InferOptions{Seed: int64(i), Samples: 200})
				if err != nil && !errors.Is(err, tuffy.ErrCanceled) {
					log.Fatal(err)
				}
				answers[i] = answer{id: i, kind: "marginal", trueN: len(res.Probs),
					canceled: errors.Is(err, tuffy.ErrCanceled), elapsed: time.Since(start)}
				return
			}
			mode := tuffy.Auto
			if i%4 == 2 {
				mode = tuffy.InDatabase
			}
			opts := tuffy.InferOptions{Mode: mode, Seed: int64(i), MaxFlips: 30_000}
			if mode == tuffy.InDatabase {
				opts.MaxFlips = 150
			}
			res, err := eng.InferMAP(qctx, opts)
			if err != nil && !errors.Is(err, tuffy.ErrCanceled) {
				log.Fatal(err)
			}
			answers[i] = answer{id: i, kind: fmt.Sprintf("map(mode=%d)", mode), cost: res.Cost,
				trueN: len(res.TrueAtoms), canceled: errors.Is(err, tuffy.ErrCanceled), elapsed: time.Since(start)}
		}(i)
	}
	wg.Wait()

	for _, a := range answers {
		status := "ok"
		if a.canceled {
			status = "canceled (best-so-far)"
		}
		fmt.Printf("query %d  %-12s cost=%-6.1f atoms=%-3d %-8v %s\n",
			a.id, a.kind, a.cost, a.trueN, a.elapsed.Round(time.Millisecond), status)
	}
}
