// Quickstart: the paper's Figure 1 program end to end — classify papers by
// research area from authorship, citations, and a few known labels.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"tuffy"
	"tuffy/internal/mln"
)

func main() {
	ctx := context.Background()

	// The exact program and evidence of Figure 1 in the paper.
	prog, err := tuffy.LoadProgramString(mln.Figure1Program)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := tuffy.LoadEvidenceString(prog, mln.Figure1Evidence)
	if err != nil {
		log.Fatal(err)
	}

	// Open + Ground is the expensive one-time phase; InferMAP is one query
	// with its own options (any number may run concurrently afterwards).
	eng, err := tuffy.Open(prog, ev, tuffy.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Ground(ctx); err != nil {
		log.Fatal(err)
	}
	res, err := eng.InferMAP(ctx, tuffy.InferOptions{
		MaxFlips: 50_000,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MAP cost: %.2f  (ground %v, search %v, %d flips)\n",
		res.Cost, res.GroundTime, res.SearchTime, res.Flips)
	fmt.Println("\nInferred true atoms:")
	lines := make([]string, 0, len(res.TrueAtoms))
	for _, a := range res.TrueAtoms {
		lines = append(lines, "  "+eng.FormatAtom(a))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}

	// The interesting outputs: P1 and P3 should pick up category DB
	// through the citation and co-author rules (P2 is labeled DB; Joe
	// wrote P1 and P2; P1 cites P3).
	fmt.Println("\nPaper categories:")
	cat := prog.MustPredicate("cat")
	for _, a := range res.TrueAtoms {
		if a.Pred == cat {
			fmt.Printf("  %s -> %s\n", prog.Syms.Name(a.Args[0]), prog.Syms.Name(a.Args[1]))
		}
	}
}
