// Relational classification (the paper's RC workload): label a clustered
// citation graph with paper categories, comparing monolithic search
// (Tuffy-p) against component-aware search (Tuffy). On this multi-
// component dataset the component-aware result should be at least as good
// at the same flip budget — usually strictly better (Theorem 3.1).
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"log"

	"tuffy"
	"tuffy/internal/datagen"
)

func main() {
	ds := datagen.RC(datagen.RCConfig{
		Papers:     400,
		Authors:    160,
		Categories: 5,
		Clusters:   80,
		Seed:       7,
	})
	fmt.Printf("RC dataset: %d evidence tuples\n", ds.Ev.Total())

	const flips = 400_000

	// Tuffy-p: no partitioning.
	sysP := tuffy.New(ds.Prog, ds.Ev, tuffy.Config{
		Mode:     tuffy.InMemoryMonolithic,
		MaxFlips: flips,
		Seed:     7,
	})
	resP, err := sysP.InferMAP()
	if err != nil {
		log.Fatal(err)
	}

	// Tuffy: component-aware.
	sysT := tuffy.New(ds.Prog, ds.Ev, tuffy.Config{
		MaxFlips: flips,
		Seed:     7,
	})
	resT, err := sysT.InferMAP()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s %10s\n", "system", "cost", "search time", "partitions")
	fmt.Printf("%-22s %12.1f %12v %10d\n", "Tuffy-p (monolithic)", resP.Cost, resP.SearchTime.Round(1e6), 1)
	fmt.Printf("%-22s %12.1f %12v %10d\n", "Tuffy (components)", resT.Cost, resT.SearchTime.Round(1e6), resT.Partitions)

	if resT.Cost <= resP.Cost {
		fmt.Println("\ncomponent-aware search matched or beat monolithic search, as Theorem 3.1 predicts")
	} else {
		fmt.Println("\nunexpected: monolithic search won on this seed")
	}

	// Show a few classifications.
	fmt.Println("\nsample labels:")
	cat := ds.Prog.MustPredicate("cat")
	shown := 0
	for _, a := range resT.TrueAtoms {
		if a.Pred == cat && shown < 8 {
			fmt.Printf("  %s -> %s\n", ds.Prog.Syms.Name(a.Args[0]), ds.Prog.Syms.Name(a.Args[1]))
			shown++
		}
	}
}
