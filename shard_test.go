package tuffy

// Tests of the distributed inference tier end to end: a coordinator
// Server sharding queries over real TCP workers must answer bit-
// identically to a direct single-engine call at every worker count,
// reject workers grounded from a different program or evidence, survive
// a worker killed mid-query with zero failed queries, and fan evidence
// updates out so restarted workers catch up from the journal. The CI
// race job runs this package with -race.

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/mln"
	"tuffy/internal/remote"
)

// startEngineWorker grounds a fresh engine on the dataset and serves it
// over TCP on an ephemeral port — one `tuffyd -worker` process, in-proc.
func startEngineWorker(t *testing.T, prog *mln.Program, ev *mln.Evidence) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return serveEngineWorker(t, prog, ev, ln)
}

func serveEngineWorker(t *testing.T, prog *mln.Program, ev *mln.Evidence, ln net.Listener) (string, func()) {
	t.Helper()
	eng := groundedEngine(t, prog, ev, EngineConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- remote.NewWorker(eng).Serve(ctx, ln) }()
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("worker serve: %v", err)
			}
		})
	}
}

// distServer builds a coordinator over the given worker addresses with a
// fast probe cadence and no result cache (so every query exercises the
// sharder, not the cache).
func distServer(t *testing.T, eng *Engine, workers ...string) *Server {
	t.Helper()
	srv, err := Serve(ServerConfig{
		CacheEntries:     -1,
		Workers:          workers,
		WorkerProbeEvery: 50 * time.Millisecond,
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func waitForWorkers(t *testing.T, srv *Server, healthy int, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n := 0
		for _, w := range srv.Workers() {
			if w.Healthy && w.Epoch == epoch {
				n++
			}
		}
		if n >= healthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never reached healthy=%d at epoch %d: %+v", healthy, epoch, srv.Workers())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Sharded serving must be bit-identical to a direct engine call at every
// worker count — the distribution contract of the component sharder.
func TestShardedServingBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	mapQs := []InferOptions{
		{MaxFlips: 20_000, Seed: 7},
		{MaxFlips: 20_000, Seed: 8},
		{MaxFlips: 5_000, Seed: 9, MaxTries: 2},
	}
	margQ := InferOptions{Samples: 60, Seed: 9}

	ref := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	wantMAP := make([]*MAPResult, len(mapQs))
	for i, q := range mapQs {
		r, err := ref.InferMAP(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Partitions < 2 {
			t.Fatalf("RC workload should decompose, got %d partitions", r.Partitions)
		}
		wantMAP[i] = r
	}
	wantMarg, err := ref.InferMarginal(ctx, margQ)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(t *testing.T) {
			var addrs []string
			for w := 0; w < workers; w++ {
				addr, stop := startEngineWorker(t, ds.Prog, ds.Ev.Clone())
				defer stop()
				addrs = append(addrs, addr)
			}
			eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
			srv := distServer(t, eng, addrs...)
			waitForWorkers(t, srv, workers, 0)

			for i, q := range mapQs {
				got, err := srv.InferMAP(ctx, Request{Options: q})
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				requireSameMAP(t, "sharded MAP", got, wantMAP[i])
			}
			gotMarg, err := srv.InferMarginal(ctx, Request{Options: margQ})
			if err != nil {
				t.Fatal(err)
			}
			requireSameMarginal(t, "sharded marginal", gotMarg, wantMarg)
		})
	}
}

// A worker grounded from different evidence must be rejected by the
// handshake and never enter membership; queries still answer locally,
// bit-identical.
func TestShardRejectsWorkerWithForeignEvidence(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	delta := filterValid(ds.Ev, datagen.RandomDelta(ds, "refers", 4, 17))
	if delta.Len() == 0 {
		t.Fatal("empty test delta")
	}
	foreignEv := mergedEvidence(t, ds.Ev, delta)

	addr, stop := startEngineWorker(t, ds.Prog, foreignEv)
	defer stop()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	srv := distServer(t, eng, addr)

	// Give the probe loop a few rounds: the worker must stay out.
	time.Sleep(200 * time.Millisecond)
	ws := srv.Workers()
	if len(ws) != 1 || ws[0].Healthy {
		t.Fatalf("foreign worker admitted: %+v", ws)
	}
	if ws[0].LastErr == "" {
		t.Fatalf("foreign worker has no recorded error: %+v", ws)
	}

	q := InferOptions{MaxFlips: 20_000, Seed: 7}
	want, err := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{}).InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.InferMAP(ctx, Request{Options: q})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "local fallback", got, want)
}

// Killing a worker mid-run must fail zero queries: in-flight shards fall
// back to the coordinator's pinned epoch, later queries stop sharding to
// the dead worker, and every answer stays bit-identical.
func TestShardKilledWorkerFailsNoQueries(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	q := InferOptions{MaxFlips: 20_000, Seed: 7}

	ref := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	want, err := ref.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	a1, stop1 := startEngineWorker(t, ds.Prog, ds.Ev.Clone())
	defer stop1()
	a2, stop2 := startEngineWorker(t, ds.Prog, ds.Ev.Clone())
	defer stop2()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	srv := distServer(t, eng, a1, a2)
	waitForWorkers(t, srv, 2, 0)

	const queries = 12
	killAt := 3
	for i := 0; i < queries; i++ {
		if i == killAt {
			// Kill one worker while queries keep flowing.
			go stop2()
		}
		got, err := srv.InferMAP(ctx, Request{Options: q})
		if err != nil {
			t.Fatalf("query %d failed after worker kill: %v", i, err)
		}
		requireSameMAP(t, "query during kill", got, want)
	}
}

// Evidence updates fan out to live workers, and a worker that was down
// through a sequence of updates catches up from the coordinator's delta
// journal when it comes back — starting from the base evidence, exactly
// like a restarted `tuffyd -worker`.
func TestShardUpdateFanOutAndRestartCatchUp(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	mapQ := InferOptions{MaxFlips: 20_000, Seed: 7}
	margQ := InferOptions{Samples: 40, Seed: 9}

	a1, stop1 := startEngineWorker(t, ds.Prog, ds.Ev.Clone())
	defer stop1()
	// Second worker is down from the start: address reserved, no listener.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a2 := ln2.Addr().String()
	ln2.Close()

	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	srv := distServer(t, eng, a1, a2)
	waitForWorkers(t, srv, 1, 0)

	// Two updates; the live worker follows along via fan-out.
	merged := ds.Ev.Clone()
	epoch := uint64(0)
	for round := 0; round < 2; round++ {
		delta := filterValid(merged, datagen.RandomDelta(ds, "refers", 5, int64(31+round)))
		if delta.Len() == 0 {
			t.Fatalf("round %d: empty delta", round)
		}
		ur, err := srv.UpdateEvidence(ctx, delta)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := merged.Apply(delta); err != nil {
			t.Fatal(err)
		}
		if !ur.Identical {
			epoch++
		}
	}
	if epoch == 0 {
		t.Fatal("updates were all no-ops; test needs effective deltas")
	}
	waitForWorkers(t, srv, 1, epoch)

	// Reference: a fresh engine grounded from scratch on the merged
	// evidence. Sharded answers on the new epoch must match it bit for bit.
	ref := groundedEngine(t, ds.Prog, merged.Clone(), EngineConfig{})
	wantMAP, err := ref.InferMAP(ctx, mapQ)
	if err != nil {
		t.Fatal(err)
	}
	wantMarg, err := ref.InferMarginal(ctx, margQ)
	if err != nil {
		t.Fatal(err)
	}
	gotMAP, err := srv.InferMAP(ctx, Request{Options: mapQ})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "post-update MAP", gotMAP, wantMAP)
	gotMarg, err := srv.InferMarginal(ctx, Request{Options: margQ})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMarginal(t, "post-update marginal", gotMarg, wantMarg)

	// The down worker comes up fresh from the BASE evidence on its reserved
	// address; the probe loop replays the journal and it rejoins current.
	ln2b, err := net.Listen("tcp", a2)
	if err != nil {
		t.Fatal(err)
	}
	_, stop2 := serveEngineWorker(t, ds.Prog, ds.Ev.Clone(), ln2b)
	defer stop2()
	waitForWorkers(t, srv, 2, epoch)

	gotMAP, err = srv.InferMAP(ctx, Request{Options: mapQ})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "MAP after catch-up", gotMAP, wantMAP)
}

// The persisted result cache is coordinator-owned and survives a restart
// with workers attached: a warm-started distributed server answers its
// working set from cache, bit-identical to the run that filled it.
func TestShardPersistedCacheSharedAcrossRestart(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	dir := t.TempDir()
	q := InferOptions{MaxFlips: 20_000, Seed: 7}

	addr, stop := startEngineWorker(t, ds.Prog, ds.Ev.Clone())
	defer stop()

	open := func() *Server {
		eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
		srv, err := Serve(ServerConfig{
			DataDir:          dir,
			Workers:          []string{addr},
			WorkerProbeEvery: 50 * time.Millisecond,
		}, eng)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv := open()
	waitForWorkers(t, srv, 1, 0)
	want, err := srv.InferMAP(ctx, Request{Options: q})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := open()
	defer srv2.Close()
	got, err := srv2.InferMAP(ctx, Request{Options: q})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "reloaded cache entry", got, want)
	if hits := srv2.Metrics().CacheHits; hits != 1 {
		t.Fatalf("warm-started server had %d cache hits, want 1", hits)
	}
}
