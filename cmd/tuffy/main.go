// Command tuffy runs MLN inference from the command line, mirroring the
// original Tuffy's interface:
//
//	tuffy -i prog.mln -e evidence.db -q cat -o out.txt
//
// Flags select MAP (default) or marginal inference, the grounding strategy,
// partitioning, memory budget, parallelism and a wall-clock timeout. With
// -explain the compiled grounding SQL is printed instead of running
// inference. SIGINT (or an elapsed -timeout) cancels the search gracefully:
// the best result found so far is still written out, with a note on stderr.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"tuffy"
	"tuffy/internal/grounding"
	"tuffy/internal/mln"
)

func main() {
	var (
		progPath  = flag.String("i", "", "MLN program file (required)")
		evPath    = flag.String("e", "", "evidence file (required)")
		queryStr  = flag.String("q", "", "comma-separated query predicates; output is restricted to them")
		outPath   = flag.String("o", "", "output file (default stdout)")
		marginal  = flag.Bool("marginal", false, "run MC-SAT marginal inference instead of MAP")
		samples   = flag.Int("samples", 200, "MC-SAT samples (with -marginal)")
		topdown   = flag.Bool("topdown", false, "use the Alchemy-style top-down grounder")
		noPart    = flag.Bool("nopart", false, "disable partitioning (Tuffy-p behaviour)")
		indb      = flag.Bool("indb", false, "run search inside the RDBMS (Tuffy-mm)")
		budget    = flag.Int64("memory", 0, "memory budget in bytes for MRF partitioning (0 = components only)")
		flips     = flag.Int64("flips", 1_000_000, "WalkSAT flip budget")
		threads   = flag.Int("threads", 1, "parallel workers for grounding, component search, partition (Gauss-Seidel) rounds and MC-SAT; results are identical for every value")
		seed      = flag.Int64("seed", 0, "random seed")
		timeout   = flag.Duration("timeout", 0, "cancel inference after this duration, keeping the best result so far (0 = no limit)")
		useClose  = flag.Bool("closure", false, "apply the lazy-inference active closure")
		explain   = flag.Bool("explain", false, "print the grounding SQL for each clause and exit")
		showStats = flag.Bool("stats", false, "print grounding and MRF statistics")
	)
	flag.Parse()
	if *progPath == "" || *evPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT cancels gracefully (partial result); a second SIGINT kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	prog, err := loadProgram(*progPath)
	fatalIf(err)
	ev, err := loadEvidence(prog, *evPath)
	fatalIf(err)

	// -q restricts output to the listed query predicates (the original Tuffy
	// CLI contract). Empty means every open predicate is reported.
	queryPreds := make(map[*mln.Predicate]bool)
	if *queryStr != "" {
		for _, name := range strings.Split(*queryStr, ",") {
			pred, ok := prog.Predicate(strings.TrimSpace(name))
			if !ok {
				fatalIf(fmt.Errorf("unknown query predicate %q", name))
			}
			queryPreds[pred] = true
		}
	}
	keep := func(a mln.GroundAtom) bool {
		return len(queryPreds) == 0 || queryPreds[a.Pred]
	}

	cfg := tuffy.EngineConfig{
		UseClosure:        *useClose,
		MemoryBudgetBytes: *budget,
		GroundWorkers:     *threads,
	}
	if *topdown {
		cfg.Grounder = tuffy.TopDown
	}
	opts := tuffy.InferOptions{
		MaxFlips:    *flips,
		Parallelism: *threads,
		Seed:        *seed,
		Samples:     *samples,
	}
	switch {
	case *indb:
		opts.Mode = tuffy.InDatabase
	case *noPart:
		opts.Mode = tuffy.InMemoryMonolithic
	}

	eng, err := tuffy.Open(prog, ev, cfg)
	fatalIf(err)

	if *explain {
		fatalIf(eng.Ground(ctx))
		for _, c := range prog.Clauses {
			comp, err := grounding.CompileClauseSQL(eng.Tables(), c)
			if err != nil {
				fmt.Printf("-- clause %d (%s): %v\n", c.ID, c.Source, err)
				continue
			}
			fmt.Printf("-- clause %d: %s\n%s\n\n", c.ID, c.Format(prog.Syms), comp.SQL)
		}
		return
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		fatalIf(err)
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	start := time.Now()
	if *marginal {
		res, err := eng.InferMarginal(ctx, opts)
		canceled := errors.Is(err, tuffy.ErrCanceled)
		if !canceled {
			fatalIf(err)
		} else if res == nil {
			fatalIf(err) // canceled before grounding finished: nothing to report
		}
		sort.Slice(res.Probs, func(i, j int) bool { return res.Probs[i].P > res.Probs[j].P })
		for _, ap := range res.Probs {
			if !keep(ap.Atom) {
				continue
			}
			fmt.Fprintf(w, "%.4f\t%s\n", ap.P, eng.FormatAtom(ap.Atom))
		}
		if canceled {
			fmt.Fprintf(os.Stderr, "tuffy: canceled after %v; marginals reflect the samples collected so far\n",
				time.Since(start).Round(time.Millisecond))
		}
	} else {
		res, err := eng.InferMAP(ctx, opts)
		canceled := errors.Is(err, tuffy.ErrCanceled)
		if !canceled {
			fatalIf(err)
		} else if res == nil {
			fatalIf(err) // canceled before grounding finished: nothing to report
		}
		for _, a := range res.TrueAtoms {
			if !keep(a) {
				continue
			}
			fmt.Fprintln(w, eng.FormatAtom(a))
		}
		fmt.Fprintf(os.Stderr, "tuffy: cost=%.2f ground=%v search=%v flips=%d partitions=%d cut=%d\n",
			res.Cost, res.GroundTime.Round(time.Millisecond), res.SearchTime.Round(time.Millisecond),
			res.Flips, res.Partitions, res.CutClauses)
		if canceled {
			fmt.Fprintln(os.Stderr, "tuffy: canceled; result above is the best state found before the stop")
		}
	}
	if *showStats {
		gs, err := eng.Stats()
		fatalIf(err)
		ms, err := eng.MRFStats()
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "tuffy: atoms=%d used=%d clauses=%d fixed=%d clauseBytes=%d searchBytes=%d total=%v\n",
			gs.NumAtoms, gs.NumUsedAtoms, gs.NumClauses, gs.FixedCostCount,
			ms.ClauseBytes, ms.SearchBytes, time.Since(start).Round(time.Millisecond))
	}
}

func loadProgram(path string) (*mln.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuffy.LoadProgram(f)
}

func loadEvidence(prog *mln.Program, path string) (*mln.Evidence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuffy.LoadEvidence(prog, f)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuffy:", err)
		os.Exit(1)
	}
}
