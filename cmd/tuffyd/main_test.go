package main

import (
	"testing"
	"time"
)

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name        string
		avg         time.Duration
		waiting     int64
		maxInFlight int
		want        int64
	}{
		// Before any query completes the average defaults to 1s, and the
		// hint never drops under the 1s floor: a client that retries
		// immediately would just be rejected again.
		{"no history", 0, 0, 4, 1},
		{"fast queries clamp to floor", 10 * time.Millisecond, 2, 4, 1},
		// Drain estimate: (waiting+1) queries at avg each, maxInFlight at
		// a time, rounded up to whole seconds.
		{"mid queue", 2 * time.Second, 7, 4, 4},
		{"rounds up", time.Second, 4, 4, 2},
		// Deep queues of slow queries saturate at the 60s ceiling rather
		// than telling clients to go away for minutes.
		{"slow deep queue clamps to ceiling", 10 * time.Second, 100, 4, 60},
	}
	for _, c := range cases {
		if got := retryAfterHint(c.avg, c.waiting, c.maxInFlight); got != c.want {
			t.Errorf("%s: retryAfterHint(%v, %d, %d) = %d, want %d",
				c.name, c.avg, c.waiting, c.maxInFlight, got, c.want)
		}
	}
}
