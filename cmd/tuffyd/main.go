// Command tuffyd is the inference daemon: it grounds an MLN program once,
// then serves MAP and marginal queries over HTTP through tuffy.Serve's
// admission-controlled scheduler — bounded priority queue, per-query
// budget caps, result cache, metrics.
//
//	tuffyd -i prog.mln -e evidence.db -addr :7090
//
// Endpoints:
//
//	POST /infer    one query; JSON body, JSON answer
//	GET  /metrics  scheduler/cache counters as JSON
//	GET  /healthz  liveness (200 once serving)
//
// Example query:
//
//	curl -s localhost:7090/infer -d '{"kind":"map","seed":1,"maxFlips":20000,"priority":1}'
//
// Admission rejections map to HTTP statuses: 429 queue full, 400 budget
// exceeded, 504 expired in queue, 503 shutting down. A query canceled
// mid-run (its deadline, or daemon shutdown) still answers 200 with
// "canceled": true and the best result found. SIGINT stops admission,
// drains in-flight queries and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"tuffy"
	"tuffy/internal/mln"
)

func main() {
	var (
		progPath   = flag.String("i", "", "MLN program file (required)")
		evPath     = flag.String("e", "", "evidence file (required)")
		addr       = flag.String("addr", ":7090", "HTTP listen address")
		threads    = flag.Int("threads", 1, "grounding workers")
		budget     = flag.Int64("memory", 0, "engine memory budget in bytes for MRF partitioning")
		replicas   = flag.Int("replicas", 1, "engine replicas to ground and load-balance across")
		inflight   = flag.Int("inflight", 4, "max concurrently executing queries")
		queue      = flag.Int("queue", 64, "admission queue bound (waiting queries)")
		lanes      = flag.Int("lanes", 3, "priority lanes (0 = most urgent)")
		maxFlips   = flag.Int64("maxflips", 0, "per-query flip cap (0 = none)")
		maxSamples = flag.Int("maxsamples", 0, "per-query MC-SAT sample cap (0 = none)")
		maxBytes   = flag.Int64("maxbytes", 0, "per-query memory estimate cap in bytes (0 = none)")
		queryTime  = flag.Duration("querytimeout", 0, "per-query wall-clock deadline incl. queue wait (0 = none)")
		cacheSize  = flag.Int("cache", 0, "result cache entries (0 = default 4096, negative = off)")
	)
	flag.Parse()
	if *progPath == "" || *evPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	prog, err := loadProgram(*progPath)
	fatalIf(err)
	ev, err := loadEvidence(prog, *evPath)
	fatalIf(err)

	cfg := tuffy.EngineConfig{GroundWorkers: *threads, MemoryBudgetBytes: *budget}
	engines := make([]*tuffy.Engine, *replicas)
	for i := range engines {
		engines[i] = tuffy.Open(prog, ev, cfg)
		start := time.Now()
		fatalIf(engines[i].Ground(ctx))
		log.Printf("replica %d grounded in %v", i, time.Since(start).Round(time.Millisecond))
	}

	srv, err := tuffy.Serve(tuffy.ServerConfig{
		MaxInFlight:        *inflight,
		MaxQueue:           *queue,
		Priorities:         *lanes,
		MaxFlipsPerQuery:   *maxFlips,
		MaxSamplesPerQuery: *maxSamples,
		MaxBytesPerQuery:   *maxBytes,
		MaxQueryTime:       *queryTime,
		CacheEntries:       *cacheSize,
	}, engines...)
	fatalIf(err)

	h := &handler{srv: srv, fmtEngine: engines[0]}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", h.infer)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	// Request contexts derive from the signal context: SIGINT cancels every
	// in-flight query, which returns promptly with its best-so-far answer
	// (the search loops' usual cancellation contract), so the drain below
	// is bounded and clients still get their 200 + "canceled": true.
	hs := &http.Server{
		Addr:        *addr,
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Connection-level protection in front of the admission layer:
		// slow or idle clients must not hold descriptors while the
		// scheduler sheds load. No WriteTimeout — query duration is
		// governed by -querytimeout through the context, not by the
		// connection.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Print("shutting down: draining queries")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
		srv.Close()
	}()
	log.Printf("tuffyd serving on %s (inflight=%d queue=%d lanes=%d)", *addr, *inflight, *queue, *lanes)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatalIf(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain to finish before exiting the process.
	<-drained
	log.Print("drained; bye")
}

// inferRequest is the JSON query body.
type inferRequest struct {
	// Kind is "map" (default) or "marginal".
	Kind string `json:"kind"`
	// Mode is "auto" (default), "memory" (monolithic in-memory) or "indb".
	Mode        string `json:"mode"`
	Seed        int64  `json:"seed"`
	MaxFlips    int64  `json:"maxFlips"`
	MaxTries    int    `json:"maxTries"`
	Rounds      int    `json:"rounds"`
	Samples     int    `json:"samples"`
	Parallelism int    `json:"parallelism"`
	Priority    int    `json:"priority"`
}

type mapResponse struct {
	// Cost is null (and Infeasible true) when the best world violates a
	// hard constraint — MAPResult reports that as +Inf, which JSON cannot
	// encode.
	Cost       *float64 `json:"cost"`
	Infeasible bool     `json:"infeasible,omitempty"`
	Flips      int64    `json:"flips"`
	Partitions int      `json:"partitions"`
	CutClauses int      `json:"cutClauses"`
	TrueAtoms  []string `json:"trueAtoms"`
	Canceled   bool     `json:"canceled"`
}

type probResponse struct {
	Atom string  `json:"atom"`
	P    float64 `json:"p"`
}

type marginalResponse struct {
	Probs    []probResponse `json:"probs"`
	Canceled bool           `json:"canceled"`
}

type handler struct {
	srv *tuffy.Server
	// fmtEngine renders atoms with the program's symbol table (all
	// replicas share one program).
	fmtEngine *tuffy.Engine
}

func (h *handler) infer(w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	// A query body is a handful of scalars; 1 MB bounds decoder memory
	// before any admission logic runs.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	opts := tuffy.InferOptions{
		Seed:              req.Seed,
		MaxFlips:          req.MaxFlips,
		MaxTries:          req.MaxTries,
		GaussSeidelRounds: req.Rounds,
		Samples:           req.Samples,
		Parallelism:       req.Parallelism,
	}
	switch strings.ToLower(req.Mode) {
	case "", "auto":
		opts.Mode = tuffy.Auto
	case "memory", "monolithic":
		opts.Mode = tuffy.InMemoryMonolithic
	case "indb", "database":
		opts.Mode = tuffy.InDatabase
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", req.Mode))
		return
	}
	q := tuffy.Request{Options: opts, Priority: req.Priority}

	switch strings.ToLower(req.Kind) {
	case "", "map":
		res, err := h.srv.InferMAP(r.Context(), q)
		if err != nil && !errors.Is(err, tuffy.ErrCanceled) {
			writeErr(w, statusFor(err), err)
			return
		}
		out := mapResponse{Canceled: err != nil}
		if res != nil {
			if math.IsInf(res.Cost, 0) {
				out.Infeasible = true
			} else {
				cost := res.Cost
				out.Cost = &cost
			}
			out.Flips = res.Flips
			out.Partitions, out.CutClauses = res.Partitions, res.CutClauses
			out.TrueAtoms = make([]string, 0, len(res.TrueAtoms))
			for _, a := range res.TrueAtoms {
				out.TrueAtoms = append(out.TrueAtoms, h.fmtEngine.FormatAtom(a))
			}
		}
		writeJSON(w, http.StatusOK, out)
	case "marginal":
		res, err := h.srv.InferMarginal(r.Context(), q)
		if err != nil && !errors.Is(err, tuffy.ErrCanceled) {
			writeErr(w, statusFor(err), err)
			return
		}
		out := marginalResponse{Canceled: err != nil}
		if res != nil {
			out.Probs = make([]probResponse, 0, len(res.Probs))
			for _, ap := range res.Probs {
				out.Probs = append(out.Probs, probResponse{Atom: h.fmtEngine.FormatAtom(ap.Atom), P: ap.P})
			}
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", req.Kind))
	}
}

func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.srv.Metrics())
}

// statusFor maps admission outcomes to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, tuffy.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, tuffy.ErrBudgetExceeded):
		return http.StatusBadRequest
	case errors.Is(err, tuffy.ErrExpiredInQueue):
		return http.StatusGatewayTimeout
	case errors.Is(err, tuffy.ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON marshals before touching the response, so an encoding failure
// becomes a 500 with a diagnostic instead of a silent 200 with no body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(fmt.Sprintf("{\"error\":%q}", "encode response: "+err.Error()))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func loadProgram(path string) (*mln.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuffy.LoadProgram(f)
}

func loadEvidence(prog *mln.Program, path string) (*mln.Evidence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuffy.LoadEvidence(prog, f)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuffyd:", err)
		os.Exit(1)
	}
}
