// Command tuffyd is the inference daemon: it grounds an MLN program, then
// serves MAP and marginal queries over HTTP through tuffy.Serve's
// admission-controlled scheduler — bounded priority queue, per-query
// budget caps, epoch-keyed result cache, metrics — and accepts live
// evidence updates that re-ground incrementally and publish a new epoch.
//
//	tuffyd -i prog.mln -e evidence.db -addr :7090
//
// Distributed mode splits one query's independent components across
// worker processes. Start workers with -worker (they speak the binary
// wire protocol, not HTTP) and point the coordinator at them:
//
//	tuffyd -i prog.mln -e evidence.db -worker :7191
//	tuffyd -i prog.mln -e evidence.db -worker :7192
//	tuffyd -i prog.mln -e evidence.db -addr :7090 -workers localhost:7191,localhost:7192
//
// Workers must be grounded from the same program and evidence — the
// handshake enforces it by fingerprint. Answers are bit-identical to a
// single-process run at every worker count; a dead worker degrades
// capacity (its shards run locally), never an answer, and /healthz stays
// 200 as long as anything — worker or local engine — can serve.
//
// Endpoints:
//
//	POST /infer     one query; JSON body, JSON answer
//	POST /evidence  apply an evidence delta; publishes the next epoch
//	GET  /metrics   scheduler/cache/epoch counters as JSON
//	GET  /healthz   liveness (200 once serving; "regrounding" true while
//	                an evidence update is re-grounding — queries still run)
//
// Example query and update:
//
//	curl -s localhost:7090/infer -d '{"kind":"map","seed":1,"maxFlips":20000,"priority":1}'
//	curl -s localhost:7090/evidence -d '{"ops":[{"pred":"friend","args":["Anna","Bob"]},{"pred":"smokes","args":["Carl"],"truth":"retract"}]}'
//
// Admission rejections map to HTTP statuses: 429 queue full, 400 budget
// exceeded, 504 expired in queue, 503 shutting down. A query canceled
// mid-run (its deadline, or daemon shutdown) still answers 200 with
// "canceled": true and the best result found. A rejected evidence delta
// (unknown predicate or constant, wrong arity) answers 400 and changes
// nothing; a failed one leaves the previous epoch serving and is safely
// retried. A 429 carries a Retry-After header estimating when a slot
// frees up. SIGINT or SIGTERM stops admission, drains in-flight queries,
// checkpoints durable state (with -data) and exits.
//
// With -data DIR, each replica keeps a write-ahead log and grounded-state
// snapshot under DIR/replicaN and the result cache is persisted in DIR;
// after a crash or restart the daemon warm-starts: it restores the
// grounded network and replays logged evidence deltas instead of
// re-grounding, then serves bit-identical answers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tuffy"
	"tuffy/internal/mln"
	"tuffy/internal/remote"
	"tuffy/internal/search"
)

func main() {
	var (
		progPath   = flag.String("i", "", "MLN program file (required)")
		evPath     = flag.String("e", "", "evidence file (required)")
		addr       = flag.String("addr", ":7090", "HTTP listen address")
		threads    = flag.Int("threads", 1, "grounding workers")
		budget     = flag.Int64("memory", 0, "engine memory budget in bytes for MRF partitioning")
		replicas   = flag.Int("replicas", 1, "engine replicas to ground and load-balance across")
		inflight   = flag.Int("inflight", 4, "max concurrently executing queries")
		queue      = flag.Int("queue", 64, "admission queue bound (waiting queries)")
		lanes      = flag.Int("lanes", 3, "priority lanes (0 = most urgent)")
		maxFlips   = flag.Int64("maxflips", 0, "per-query flip cap (0 = none)")
		maxSamples = flag.Int("maxsamples", 0, "per-query MC-SAT sample cap (0 = none)")
		maxBytes   = flag.Int64("maxbytes", 0, "per-query memory estimate cap in bytes (0 = none)")
		queryTime  = flag.Duration("querytimeout", 0, "per-query wall-clock deadline incl. queue wait (0 = none)")
		cacheSize  = flag.Int("cache", 0, "result cache entries (0 = default 4096, negative = off)")
		dataDir    = flag.String("data", "", "durable data directory: WAL + snapshots per replica, persisted result cache; warm-starts on restart (empty = in-memory only)")
		workerAddr = flag.String("worker", "", "run as a distributed worker: serve the wire protocol on this TCP address instead of HTTP")
		workers    = flag.String("workers", "", "comma-separated worker addresses to shard decomposable queries across")
	)
	flag.Parse()
	if *progPath == "" || *evPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *workerAddr != "" && *workers != "" {
		fatalIf(errors.New("-worker and -workers are mutually exclusive: a process is either a worker or a coordinator"))
	}
	if *workerAddr != "" {
		// A worker hosts exactly one engine: shards of one query are its
		// unit of work, so there is nothing to load-balance locally.
		*replicas = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	prog, err := loadProgram(*progPath)
	fatalIf(err)
	ev, err := loadEvidence(prog, *evPath)
	fatalIf(err)

	cfg := tuffy.EngineConfig{GroundWorkers: *threads, MemoryBudgetBytes: *budget}
	engines := make([]*tuffy.Engine, *replicas)
	for i := range engines {
		if *dataDir != "" {
			// Each replica owns its own WAL and snapshot; they replay the
			// same deltas, so all recover to the same epoch.
			cfg.DataDir = filepath.Join(*dataDir, fmt.Sprintf("replica%d", i))
		}
		eng, err := tuffy.Open(prog, ev, cfg)
		fatalIf(err)
		engines[i] = eng
		if ds := eng.DurabilityStats(); ds.WarmStart {
			// Ground below is a no-op on a warm-started engine: recovery
			// already published the pre-crash epoch.
			log.Printf("replica %d warm-started in %v (epoch %d, %d deltas replayed)",
				i, ds.RecoveryTime.Round(time.Millisecond), eng.Generation(), ds.ReplayedDeltas)
			continue
		}
		start := time.Now()
		fatalIf(engines[i].Ground(ctx))
		log.Printf("replica %d grounded in %v", i, time.Since(start).Round(time.Millisecond))
	}

	if *workerAddr != "" {
		// Worker mode: serve the framed wire protocol until SIGINT/SIGTERM.
		// The accept loop closes the listener and live sessions on the
		// signal; in-flight shards return promptly via context cancellation.
		ln, err := net.Listen("tcp", *workerAddr)
		fatalIf(err)
		log.Printf("tuffyd worker serving on %s (epoch %d)", ln.Addr(), engines[0].Generation())
		fatalIf(remote.NewWorker(engines[0]).Serve(ctx, ln))
		if err := engines[0].Close(); err != nil {
			log.Printf("closing engine: %v", err)
		}
		log.Print("worker stopped; bye")
		return
	}

	var workerList []string
	if *workers != "" {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				workerList = append(workerList, a)
			}
		}
	}

	srv, err := tuffy.Serve(tuffy.ServerConfig{
		MaxInFlight:        *inflight,
		MaxQueue:           *queue,
		Priorities:         *lanes,
		MaxFlipsPerQuery:   *maxFlips,
		MaxSamplesPerQuery: *maxSamples,
		MaxBytesPerQuery:   *maxBytes,
		MaxQueryTime:       *queryTime,
		CacheEntries:       *cacheSize,
		DataDir:            *dataDir,
		Workers:            workerList,
	}, engines...)
	fatalIf(err)

	h := &handler{srv: srv, fmtEngine: engines[0], maxInFlight: *inflight}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", h.infer)
	mux.HandleFunc("POST /evidence", h.evidence)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		ds := engines[0].DurabilityStats()
		ws, healthy := workerRows(srv)
		// Local engines can always serve (worker outages only shrink
		// capacity), so unhealthy workers never flip /healthz to 503; it
		// would take having no backend at all, which Serve rejects upfront.
		ok := len(engines) > 0 || healthy > 0
		status := http.StatusOK
		if !ok {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"ok":             ok,
			"epoch":          srv.Metrics().Epoch,
			"regrounding":    srv.Updating(),
			"durable":        ds.Enabled,
			"warmStart":      ds.WarmStart,
			"recoveryMillis": ds.RecoveryTime.Milliseconds(),
			"checkpoints":    ds.Checkpoints,
			"workersHealthy": healthy,
			"workersTotal":   len(ws),
			"workers":        ws,
		})
	})

	// Request contexts derive from the signal context: SIGINT cancels every
	// in-flight query, which returns promptly with its best-so-far answer
	// (the search loops' usual cancellation contract), so the drain below
	// is bounded and clients still get their 200 + "canceled": true.
	hs := &http.Server{
		Addr:        *addr,
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Connection-level protection in front of the admission layer:
		// slow or idle clients must not hold descriptors while the
		// scheduler sheds load. No WriteTimeout — query duration is
		// governed by -querytimeout through the context, not by the
		// connection.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Print("shutting down: draining queries")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
		if err := srv.Close(); err != nil {
			log.Printf("persisting result cache: %v", err)
		}
		for i, eng := range engines {
			if err := eng.Close(); err != nil {
				log.Printf("closing replica %d: %v", i, err)
			}
		}
	}()
	log.Printf("tuffyd serving on %s (inflight=%d queue=%d lanes=%d)", *addr, *inflight, *queue, *lanes)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatalIf(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain to finish before exiting the process.
	<-drained
	log.Print("drained; bye")
}

// inferRequest is the JSON query body.
type inferRequest struct {
	// Kind is "map" (default) or "marginal".
	Kind string `json:"kind"`
	// Mode is "auto" (default), "memory" (monolithic in-memory) or "indb".
	Mode        string `json:"mode"`
	Seed        int64  `json:"seed"`
	MaxFlips    int64  `json:"maxFlips"`
	MaxTries    int    `json:"maxTries"`
	Rounds      int    `json:"rounds"`
	Samples     int    `json:"samples"`
	Parallelism int    `json:"parallelism"`
	Priority    int    `json:"priority"`
}

type mapResponse struct {
	// Cost is null (and Infeasible true) when the best world violates a
	// hard constraint — MAPResult reports that as +Inf, which JSON cannot
	// encode.
	Cost       *float64 `json:"cost"`
	Infeasible bool     `json:"infeasible,omitempty"`
	Flips      int64    `json:"flips"`
	Partitions int      `json:"partitions"`
	CutClauses int      `json:"cutClauses"`
	TrueAtoms  []string `json:"trueAtoms"`
	Canceled   bool     `json:"canceled"`
}

type probResponse struct {
	Atom string  `json:"atom"`
	P    float64 `json:"p"`
}

type marginalResponse struct {
	Probs    []probResponse `json:"probs"`
	Canceled bool           `json:"canceled"`
}

type handler struct {
	srv *tuffy.Server
	// fmtEngine renders atoms with the program's symbol table (all
	// replicas share one program).
	fmtEngine *tuffy.Engine
	// maxInFlight mirrors the server's execution-slot count for the
	// Retry-After estimate on 429s.
	maxInFlight int
}

func (h *handler) infer(w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	// A query body is a handful of scalars; 1 MB bounds decoder memory
	// before any admission logic runs.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	opts := tuffy.InferOptions{
		Seed:              req.Seed,
		MaxFlips:          req.MaxFlips,
		MaxTries:          req.MaxTries,
		GaussSeidelRounds: req.Rounds,
		Samples:           req.Samples,
		Parallelism:       req.Parallelism,
	}
	switch strings.ToLower(req.Mode) {
	case "", "auto":
		opts.Mode = tuffy.Auto
	case "memory", "monolithic":
		opts.Mode = tuffy.InMemoryMonolithic
	case "indb", "database":
		opts.Mode = tuffy.InDatabase
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", req.Mode))
		return
	}
	q := tuffy.Request{Options: opts, Priority: req.Priority}

	switch strings.ToLower(req.Kind) {
	case "", "map":
		res, err := h.srv.InferMAP(r.Context(), q)
		if err != nil && !errors.Is(err, tuffy.ErrCanceled) {
			h.reject(w, err)
			return
		}
		out := mapResponse{Canceled: err != nil}
		if res != nil {
			if math.IsInf(res.Cost, 0) {
				out.Infeasible = true
			} else {
				cost := res.Cost
				out.Cost = &cost
			}
			out.Flips = res.Flips
			out.Partitions, out.CutClauses = res.Partitions, res.CutClauses
			out.TrueAtoms = make([]string, 0, len(res.TrueAtoms))
			for _, a := range res.TrueAtoms {
				out.TrueAtoms = append(out.TrueAtoms, h.fmtEngine.FormatAtom(a))
			}
		}
		writeJSON(w, http.StatusOK, out)
	case "marginal":
		res, err := h.srv.InferMarginal(r.Context(), q)
		if err != nil && !errors.Is(err, tuffy.ErrCanceled) {
			h.reject(w, err)
			return
		}
		out := marginalResponse{Canceled: err != nil}
		if res != nil {
			out.Probs = make([]probResponse, 0, len(res.Probs))
			for _, ap := range res.Probs {
				out.Probs = append(out.Probs, probResponse{Atom: h.fmtEngine.FormatAtom(ap.Atom), P: ap.P})
			}
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", req.Kind))
	}
}

// evidenceOp is one JSON evidence mutation: constants by name, truth
// "true" (default), "false", or "retract".
type evidenceOp struct {
	Pred  string   `json:"pred"`
	Args  []string `json:"args"`
	Truth string   `json:"truth"`
}

type evidenceRequest struct {
	Ops []evidenceOp `json:"ops"`
}

type evidenceResponse struct {
	Epoch             uint64 `json:"epoch"`
	Identical         bool   `json:"identical"`
	ClausesRerun      int    `json:"clausesRerun"`
	ClausesTotal      int    `json:"clausesTotal"`
	RawsAdded         int    `json:"rawsAdded"`
	RawsRemoved       int    `json:"rawsRemoved"`
	TouchedAtoms      int    `json:"touchedAtoms"`
	ClausesAdded      int    `json:"clausesAdded"`
	ClausesRemoved    int    `json:"clausesRemoved"`
	ClausesReweighted int    `json:"clausesReweighted"`
	ComponentsReused  int    `json:"componentsReused"`
	PartsReused       int    `json:"partsReused"`
	UpdateMillis      int64  `json:"updateMillis"`
}

// evidence applies one evidence delta to every replica and publishes the
// next epoch. Constants are resolved by name without interning: a name the
// program has never seen is a 400, not a new constant (new constants would
// change the grounding universe, which is a full re-ground, not an update).
func (h *handler) evidence(w http.ResponseWriter, r *http.Request) {
	var req evidenceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty delta: no ops"))
		return
	}
	prog := h.fmtEngine.Prog()
	var d mln.Delta
	for i, op := range req.Ops {
		pred, ok := prog.Predicate(op.Pred)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown predicate %q", i, op.Pred))
			return
		}
		if len(op.Args) != pred.Arity() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: %s expects %d args, got %d", i, pred.Name, pred.Arity(), len(op.Args)))
			return
		}
		args := make([]int32, len(op.Args))
		for j, name := range op.Args {
			id, ok := prog.Syms.Lookup(name)
			if !ok {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown constant %q", i, name))
				return
			}
			args[j] = id
		}
		switch strings.ToLower(op.Truth) {
		case "", "true":
			d.Upsert(pred, args, mln.True)
		case "false":
			d.Upsert(pred, args, mln.False)
		case "retract", "remove", "unknown":
			d.Remove(pred, args)
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown truth %q (want true/false/retract)", i, op.Truth))
			return
		}
	}
	ur, err := h.srv.UpdateEvidence(r.Context(), d)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, mln.ErrConstantNotInDomain) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, evidenceResponse{
		Epoch:             ur.Epoch,
		Identical:         ur.Identical,
		ClausesRerun:      ur.ClausesRerun,
		ClausesTotal:      ur.ClausesTotal,
		RawsAdded:         ur.RawsAdded,
		RawsRemoved:       ur.RawsRemoved,
		TouchedAtoms:      ur.TouchedAtoms,
		ClausesAdded:      ur.ClausesAdded,
		ClausesRemoved:    ur.ClausesRemoved,
		ClausesReweighted: ur.ClausesReweighted,
		ComponentsReused:  ur.ComponentsReused,
		PartsReused:       ur.PartsReused,
		UpdateMillis:      ur.UpdateTime.Milliseconds(),
	})
}

func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	ws, healthy := workerRows(h.srv)
	writeJSON(w, http.StatusOK, struct {
		tuffy.ServerMetrics
		Memo           search.MemoStats      `json:"memo"`
		Durability     tuffy.DurabilityStats `json:"durability"`
		WorkersHealthy int                   `json:"workersHealthy"`
		WorkersTotal   int                   `json:"workersTotal"`
		Workers        []tuffy.WorkerStatus  `json:"workers,omitempty"`
	}{h.srv.Metrics(), h.fmtEngine.MemoStats(), h.fmtEngine.DurabilityStats(), healthy, len(ws), ws})
}

// workerRows snapshots the remote worker pool for /healthz and /metrics.
func workerRows(srv *tuffy.Server) ([]tuffy.WorkerStatus, int) {
	ws := srv.Workers()
	healthy := 0
	for _, w := range ws {
		if w.Healthy {
			healthy++
		}
	}
	return ws, healthy
}

// reject writes an admission error; a 429 (queue full) additionally
// carries a Retry-After estimate of when a slot should free up, derived
// from the live queue depth and observed per-query latency.
func (h *handler) reject(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", h.retryAfterSeconds()))
	}
	writeErr(w, status, err)
}

func (h *handler) retryAfterSeconds() int64 {
	m := h.srv.Metrics()
	return retryAfterHint(m.AvgLatency(), m.Queued+m.InFlight, h.maxInFlight)
}

// retryAfterHint estimates the wait for the whole queue ahead of a retry
// to drain: queued queries finish at roughly maxInFlight per average
// query latency. The average must be the mean of real execution runs
// only — cache hits and batch-absorbed queries are excluded from
// Metrics.AvgLatency precisely so this estimate doesn't collapse toward
// zero under a hit- or batch-heavy mix. Before any query completes the
// average defaults to one second; the result is clamped to [1s, 60s] so
// clients always get a sane, bounded hint.
func retryAfterHint(avg time.Duration, waiting int64, maxInFlight int) int64 {
	if avg <= 0 {
		avg = time.Second
	}
	est := avg * time.Duration(waiting+1) / time.Duration(maxInFlight)
	secs := int64((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// statusFor maps admission outcomes to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, tuffy.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, tuffy.ErrBudgetExceeded):
		return http.StatusBadRequest
	case errors.Is(err, tuffy.ErrExpiredInQueue):
		return http.StatusGatewayTimeout
	case errors.Is(err, tuffy.ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON marshals before touching the response, so an encoding failure
// becomes a 500 with a diagnostic instead of a silent 200 with no body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(fmt.Sprintf("{\"error\":%q}", "encode response: "+err.Error()))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func loadProgram(path string) (*mln.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuffy.LoadProgram(f)
}

func loadEvidence(prog *mln.Program, path string) (*mln.Evidence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuffy.LoadEvidence(prog, f)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuffyd:", err)
		os.Exit(1)
	}
}
