// Command tuffybench regenerates the tables and figures of the Tuffy paper
// (VLDB 2011) on the synthetic workloads described in DESIGN.md.
//
// Usage:
//
//	tuffybench -exp table2          # one experiment
//	tuffybench -exp all             # everything
//	tuffybench -exp figure6 -full   # paper-closer scale (slower)
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 figure3
// figure4 figure5 figure6 figure8 theorem31 erplus closure groundpar
// partpar flipbatch serve incground recovery searchthru dist all.
//
// With -json DIR, each experiment additionally writes its rendered table
// and timing to DIR/BENCH_<name>.json — the machine-readable artifact the
// CI bench-smoke job uploads. An experiment whose enforced invariant
// regresses (e.g. flipbatch's >=5x read reduction, serve's cache-hit
// bit-identity) exits non-zero, failing the job.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"tuffy/internal/bench"
)

func main() {
	// A re-exec'd dist-experiment worker subprocess serves the wire
	// protocol and exits; it must not parse flags or run experiments.
	if bench.MaybeDistWorker() {
		return
	}
	exp := flag.String("exp", "all", "experiment to run (table1..table7, figure3..figure8, theorem31, all)")
	full := flag.Bool("full", false, "run at larger, paper-closer scale")
	jsonDir := flag.String("json", "", "also write BENCH_<exp>.json files into this directory")
	flag.Parse()

	// SIGINT cancels the running experiment's searches gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := bench.DefaultScale()
	if *full {
		scale = bench.FullScale()
	}

	type driver struct {
		name string
		run  func(context.Context, bench.Scale) (*bench.Table, error)
	}
	drivers := []driver{
		{"table1", bench.Table1},
		{"table2", bench.Table2},
		{"table3", bench.Table3},
		{"table4", bench.Table4},
		{"table5", bench.Table5},
		{"table6", bench.Table6},
		{"table7", bench.Table7},
		{"figure3", bench.Figure3},
		{"figure4", bench.Figure4},
		{"figure5", bench.Figure5},
		{"figure6", bench.Figure6},
		{"figure8", bench.Figure8},
		{"theorem31", bench.Theorem31},
		{"erplus", bench.ERPlus},
		{"closure", bench.ClosureAblation},
		{"groundpar", bench.GroundParallel},
		{"partpar", bench.PartParallel},
		{"flipbatch", bench.FlipBatch},
		{"serve", bench.Serve},
		{"incground", bench.IncGround},
		{"recovery", bench.Recovery},
		{"searchthru", bench.SearchThru},
		{"dist", bench.Dist},
	}

	want := strings.ToLower(*exp)
	ran := 0
	for _, d := range drivers {
		if want != "all" && want != d.name {
			continue
		}
		start := time.Now()
		t, err := d.run(ctx, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuffybench: %s: %v\n", d.name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		elapsed := time.Since(start)
		fmt.Printf("(%s finished in %v)\n", d.name, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, d.name, t, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "tuffybench: %s: %v\n", d.name, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "tuffybench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// benchJSON is the machine-readable experiment record for CI artifacts.
// "passed" is trivially true here: a driver whose enforced invariant fails
// returns an error and the process exits non-zero before writing anything,
// so the field documents what a present file means.
type benchJSON struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	ElapsedMs  int64      `json:"elapsedMs"`
	Passed     bool       `json:"passed"`
}

func writeJSON(dir, name string, t *bench.Table, elapsed time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(benchJSON{
		Experiment: name,
		Title:      t.Title,
		Header:     t.Header,
		Rows:       t.Rows,
		ElapsedMs:  elapsed.Milliseconds(),
		Passed:     true,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), append(b, '\n'), 0o644)
}
