package tuffy

// Integration tests of the public API: the full pipeline from program text
// to inferred atoms, across grounders, search modes, and inference kinds.

import (
	"math"
	"strings"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/mln"
)

func figure1System(t *testing.T, cfg Config) *System {
	t.Helper()
	prog, err := LoadProgramString(mln.Figure1Program)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := LoadEvidenceString(prog, mln.Figure1Evidence)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog, ev, cfg)
}

func TestInferMAPFigure1(t *testing.T) {
	sys := figure1System(t, Config{MaxFlips: 50_000, Seed: 1})
	res, err := sys.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Cost, 1) {
		t.Fatal("hard clauses unsatisfied")
	}
	if res.Cost != 0 {
		t.Fatalf("Figure 1 admits a zero-cost world; got %v", res.Cost)
	}
	// P1 and P3 should adopt P2's DB label through F2/F3.
	found := map[string]bool{}
	for _, a := range res.TrueAtoms {
		found[sys.FormatAtom(a)] = true
	}
	if !found["cat(P1, DB)"] || !found["cat(P3, DB)"] {
		t.Fatalf("expected cat(P1,DB) and cat(P3,DB) in %v", found)
	}
}

func TestInferMAPModesAgreeOnCost(t *testing.T) {
	want := -1.0
	for _, mode := range []SearchMode{Auto, InMemoryMonolithic, InDatabase} {
		cfg := Config{MaxFlips: 30_000, Seed: 2, Mode: mode}
		if mode == InDatabase {
			cfg.MaxFlips = 200 // table scans per flip: keep small
		}
		sys := figure1System(t, cfg)
		res, err := sys.InferMAP()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if want < 0 {
			want = res.Cost
		} else if res.Cost != want {
			t.Fatalf("mode %v cost %v != %v", mode, res.Cost, want)
		}
	}
}

func TestGroundersAgreeThroughAPI(t *testing.T) {
	sysB := figure1System(t, Config{Grounder: BottomUp})
	sysT := figure1System(t, Config{Grounder: TopDown})
	if err := sysB.Ground(); err != nil {
		t.Fatal(err)
	}
	if err := sysT.Ground(); err != nil {
		t.Fatal(err)
	}
	sb, _ := sysB.Stats()
	st, _ := sysT.Stats()
	if sb.NumClauses != st.NumClauses || sb.NumUsedAtoms != st.NumUsedAtoms {
		t.Fatalf("grounders disagree: %+v vs %+v", sb, st)
	}
}

func TestInferMAPWithClosure(t *testing.T) {
	sys := figure1System(t, Config{MaxFlips: 50_000, Seed: 3, UseClosure: true})
	res, err := sys.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("closure changed the optimum: %v", res.Cost)
	}
}

func TestInferMAPPartitionedRC(t *testing.T) {
	ds := datagen.RC(datagen.RCConfig{Papers: 120, Authors: 50, Clusters: 24, Seed: 4})
	sys := New(ds.Prog, ds.Ev, Config{MaxFlips: 100_000, Seed: 4})
	res, err := sys.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("RC should partition into components, got %d", res.Partitions)
	}
	if math.IsInf(res.Cost, 1) {
		t.Fatal("infeasible result on soft-only effective MRF")
	}
}

func TestInferMAPMemoryBudgetForcesSplit(t *testing.T) {
	ds := datagen.ER(datagen.ERConfig{Records: 24, Groups: 6, Seed: 5})
	whole := New(ds.Prog, ds.Ev, Config{MaxFlips: 50_000, Seed: 5})
	resW, err := whole.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if resW.Partitions != 1 {
		t.Fatalf("ER should be one component, got %d", resW.Partitions)
	}
	ms, _ := whole.MRFStats()
	split := New(ds.Prog, ds.Ev, Config{
		MaxFlips:          50_000,
		Seed:              5,
		MemoryBudgetBytes: ms.SearchBytes / 8,
	})
	resS, err := split.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if resS.Partitions < 2 {
		t.Fatalf("budget did not split: %d partitions", resS.Partitions)
	}
	if resS.CutClauses == 0 {
		t.Fatal("dense ER split must cut clauses")
	}
}

func TestHybridFallbackToInDatabaseSearch(t *testing.T) {
	// Single-atom components whose byte footprint exceeds a tiny memory
	// budget trigger the Section 3.2 fallback: search runs inside the
	// RDBMS for those components.
	prog, err := LoadProgramString(`
thing = {A, B, C}
p(thing)
1 p(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	ev := mln.NewEvidence(prog)
	sys := New(prog, ev, Config{
		MaxFlips:          1000,
		Seed:              9,
		MemoryBudgetBytes: 41, // below one single-atom component's footprint
	})
	res, err := sys.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if res.InDBComponents == 0 {
		t.Fatal("expected in-database fallback components")
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %v; in-DB search should still satisfy the unit clauses", res.Cost)
	}
	if len(res.TrueAtoms) != 3 {
		t.Fatalf("want all 3 atoms true, got %v", res.TrueAtoms)
	}
}

func TestInferMarginalFigure1(t *testing.T) {
	sys := figure1System(t, Config{Seed: 6})
	res, err := sys.InferMarginal(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probs) == 0 {
		t.Fatal("no marginals")
	}
	cat := sys.Prog.MustPredicate("cat")
	net, _ := sys.Prog.Syms.Lookup("Networking")
	db, _ := sys.Prog.Syms.Lookup("DB")
	var pNet, pDB float64
	nNet, nDB := 0, 0
	for _, ap := range res.Probs {
		if ap.Atom.Pred != cat {
			continue
		}
		if ap.P < -1e-9 || ap.P > 1+1e-9 {
			t.Fatalf("probability out of range: %v", ap.P)
		}
		switch ap.Atom.Args[1] {
		case net:
			pNet += ap.P
			nNet++
		case db:
			pDB += ap.P
			nDB++
		}
	}
	if nNet == 0 || nDB == 0 {
		t.Fatal("missing category atoms")
	}
	// F5 penalizes Networking: its average marginal must be below DB's.
	if pNet/float64(nNet) >= pDB/float64(nDB) {
		t.Fatalf("Networking average %.3f should be below DB average %.3f",
			pNet/float64(nNet), pDB/float64(nDB))
	}
}

func TestStatsBeforeGroundFails(t *testing.T) {
	sys := figure1System(t, Config{})
	if _, err := sys.Stats(); err == nil {
		t.Fatal("Stats before Ground should fail")
	}
	if _, err := sys.MRFStats(); err == nil {
		t.Fatal("MRFStats before Ground should fail")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if _, err := LoadProgramString("1 undeclared(x)"); err == nil {
		t.Fatal("bad program accepted")
	}
	prog, _ := LoadProgramString("p(t)")
	if _, err := LoadEvidence(prog, strings.NewReader("q(A)")); err == nil {
		t.Fatal("bad evidence accepted")
	}
}

func TestParallelismMatchesSequential(t *testing.T) {
	ds := datagen.IE(datagen.IEConfig{Chains: 150, Seed: 7})
	run := func(par int) float64 {
		sys := New(ds.Prog, ds.Ev, Config{MaxFlips: 60_000, Seed: 7, Parallelism: par})
		res, err := sys.InferMAP()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	// Per-component seeds are fixed, so the only difference is the
	// float summation order across workers.
	if c1, c4 := run(1), run(4); math.Abs(c1-c4) > 1e-6 {
		t.Fatalf("parallel cost %v != sequential %v", c4, c1)
	}
}

func TestTrackerThroughConfig(t *testing.T) {
	prog, _ := LoadProgramString(mln.Figure1Program)
	ev, _ := LoadEvidenceString(prog, mln.Figure1Evidence)
	// Import cycle note: search.Tracker is re-exported via the Config field.
	sys := New(prog, ev, Config{MaxFlips: 10_000, Seed: 8})
	if _, err := sys.InferMAP(); err != nil {
		t.Fatal(err)
	}
}
