package tuffy

// Tests of the serving layer: N concurrent clients through tuffy.Serve
// must get answers bit-identical to direct Engine calls (cache on and
// off), budgets reject or clamp at admission, the queue rejects and
// expires with typed errors, and the cache canonicalizes options. The
// CI race job runs this package with -race.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tuffy/internal/search"
	"tuffy/internal/server"
)

// serveWorkload is a mixed MAP/marginal query set with distinct answers.
func serveWorkload() []Request {
	reqs := []Request{
		{Options: InferOptions{Mode: Auto, MaxFlips: 8_000, Seed: 1}},
		{Options: InferOptions{Mode: Auto, MaxFlips: 8_000, Seed: 2}, Priority: 1},
		{Options: InferOptions{Mode: InMemoryMonolithic, MaxFlips: 8_000, Seed: 3}, Priority: 2},
		{Options: InferOptions{Mode: InDatabase, MaxFlips: 60, Seed: 4}},
		{Options: InferOptions{Mode: Auto, MaxFlips: 8_000, Seed: 5}, Priority: 1},
	}
	return reqs
}

func mapKey(r *MAPResult) string {
	return fmt.Sprintf("%v|%d|%v", r.Cost, r.Flips, r.State)
}

// Direct Engine answers are the reference; every response the server
// produces — scheduled, queued or cached — must match them bit for bit.
func TestServerBitIdenticalToDirectEngine(t *testing.T) {
	ctx := context.Background()
	eng := figure1Engine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	reqs := serveWorkload()
	margReq := Request{Options: InferOptions{Samples: 120, Seed: 9}}

	wantMAP := make(map[int]string)
	for i, r := range reqs {
		res, err := eng.InferMAP(ctx, r.Options)
		if err != nil {
			t.Fatal(err)
		}
		wantMAP[i] = mapKey(res)
	}
	wantMarg, err := eng.InferMarginal(ctx, margReq.Options)
	if err != nil {
		t.Fatal(err)
	}

	for _, cacheEntries := range []int{0 /* default cache on */, -1 /* off */} {
		name := "cache-on"
		if cacheEntries < 0 {
			name = "cache-off"
		}
		t.Run(name, func(t *testing.T) {
			srv, err := Serve(ServerConfig{MaxInFlight: 4, MaxQueue: 256, CacheEntries: cacheEntries}, eng)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			const clients = 8
			const rounds = 3
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						for i, r := range reqs {
							// Stagger the order per client so queries
							// collide in every combination.
							i = (i + c + round) % len(reqs)
							r = reqs[i]
							res, err := srv.InferMAP(ctx, r)
							if err != nil {
								errCh <- fmt.Errorf("client %d req %d: %w", c, i, err)
								return
							}
							if got := mapKey(res); got != wantMAP[i] {
								errCh <- fmt.Errorf("client %d req %d: served answer diverges from direct engine call", c, i)
								return
							}
						}
						mres, err := srv.InferMarginal(ctx, margReq)
						if err != nil {
							errCh <- fmt.Errorf("client %d marginal: %w", c, err)
							return
						}
						for j := range wantMarg.Probs {
							if mres.Probs[j].P != wantMarg.Probs[j].P {
								errCh <- fmt.Errorf("client %d: marginal %d diverges", c, j)
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			m := srv.Metrics()
			total := int64(clients * rounds * (len(reqs) + 1))
			// Every issued query is answered exactly once: by a real run, by
			// absorbing a batched leader's run, or from cache.
			if m.Completed+m.Batched+m.CacheHits != total {
				t.Fatalf("completed %d + batched %d + cache hits %d != %d issued queries",
					m.Completed, m.Batched, m.CacheHits, total)
			}
			if cacheEntries < 0 {
				if m.CacheHits != 0 {
					t.Fatalf("cache disabled but %d hits", m.CacheHits)
				}
				if m.Completed+m.Batched != total {
					t.Fatalf("cache off: completed %d + batched %d, want %d", m.Completed, m.Batched, total)
				}
			} else if m.CacheHits == 0 {
				t.Fatal("cache on: repeated identical queries produced no hits")
			}
			if m.RejectedQueue != 0 || m.RejectedBudget != 0 || m.Expired != 0 {
				t.Fatalf("unexpected rejections: %+v", m)
			}
		})
	}
}

// Explicit budgets beyond the caps must reject with a typed BudgetError;
// defaulted budgets are clamped to the cap and still answer exactly like a
// direct engine call with the clamped budget.
func TestServerBudgetEnforcement(t *testing.T) {
	ctx := context.Background()
	eng := figure1Engine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{
		MaxFlipsPerQuery:   10_000,
		MaxSamplesPerQuery: 50,
		CacheEntries:       -1,
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Explicit over-ask: typed rejection carrying the numbers.
	_, err = srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 50_000, Seed: 1}})
	var be *server.BudgetError
	if !errors.As(err, &be) || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want *server.BudgetError matching ErrBudgetExceeded", err)
	}
	if be.Resource != "flips" || be.Requested != 50_000 || be.Limit != 10_000 {
		t.Fatalf("budget error fields: %+v", be)
	}
	if _, err := srv.InferMarginal(ctx, Request{Options: InferOptions{Samples: 500, Seed: 1}}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("marginal over-ask: %v, want ErrBudgetExceeded", err)
	}
	// A marginal query never consumes a flip budget: a stray MaxFlips
	// beyond the cap must not reject it.
	if _, err := srv.InferMarginal(ctx, Request{Options: InferOptions{MaxFlips: 50_000, Samples: 20, Seed: 1}}); err != nil {
		t.Fatalf("marginal with stray MaxFlips: %v, want success", err)
	}

	// Defaulted budget: clamped to the cap, bit-identical to a direct
	// call with the same clamped budget.
	res, err := srv.InferMAP(ctx, Request{Options: InferOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.InferMAP(ctx, InferOptions{Seed: 2, MaxFlips: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if mapKey(res) != mapKey(want) {
		t.Fatal("clamped default budget diverges from direct clamped call")
	}
	if srv.Metrics().RejectedBudget != 2 {
		t.Fatalf("RejectedBudget = %d, want 2", srv.Metrics().RejectedBudget)
	}
}

// A memory cap below the grounded network's per-query estimate must
// reject at admission, before any search work happens.
func TestServerMemoryCap(t *testing.T) {
	ctx := context.Background()
	eng := figure1Engine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{MaxBytesPerQuery: 1}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = srv.InferMAP(ctx, Request{Options: InferOptions{Seed: 1}})
	var be *server.BudgetError
	if !errors.As(err, &be) || be.Resource != "memory" {
		t.Fatalf("err = %v, want memory BudgetError", err)
	}
}

// Serve must refuse engines that are not grounded yet (admission needs
// the clause counts, and grounding inside the server would be a hidden
// expensive phase).
func TestServeRequiresGroundedEngine(t *testing.T) {
	eng := figure1Engine(t, EngineConfig{})
	if _, err := Serve(ServerConfig{}, eng); err == nil {
		t.Fatal("Serve accepted an ungrounded engine")
	}
	if _, err := Serve(ServerConfig{}); err == nil {
		t.Fatal("Serve accepted zero engines")
	}
}

// Queue-full and expired-in-queue must surface through the public API as
// their typed errors, staged deterministically via the metrics gauges.
func TestServerQueueRejectionAndExpiry(t *testing.T) {
	ctx := context.Background()
	eng := contradictionEngine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{MaxInFlight: 1, MaxQueue: 1, CacheEntries: -1}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	waitGauge := func(get func(ServerMetrics) int64, n int64, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if get(srv.Metrics()) == n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("%s never reached %d", what, n)
	}

	// Occupy the only slot with an effectively unbounded query.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	running := make(chan error, 1)
	go func() {
		_, err := srv.InferMAP(runCtx, Request{Options: InferOptions{MaxFlips: 1 << 40, Seed: 1}})
		running <- err
	}()
	waitGauge(func(m ServerMetrics) int64 { return m.InFlight }, 1, "in-flight")

	// Fill the single queue slot with a query that will expire there.
	qCtx, cancelQ := context.WithCancel(ctx)
	defer cancelQ()
	queued := make(chan error, 1)
	go func() {
		_, err := srv.InferMAP(qCtx, Request{Options: InferOptions{MaxFlips: 10, Seed: 2}})
		queued <- err
	}()
	waitGauge(func(m ServerMetrics) int64 { return m.Queued }, 1, "queued")

	// Third query: queue full, typed rejection.
	if _, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 10, Seed: 3}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}

	// Cancel the queued query: it must expire in queue without running.
	cancelQ()
	if err := <-queued; !errors.Is(err, ErrExpiredInQueue) {
		t.Fatalf("queued query err = %v, want ErrExpiredInQueue", err)
	}

	// Cancel the running query: engine semantics (best-so-far +
	// ErrCanceled) pass through the server untouched.
	cancelRun()
	if err := <-running; !errors.Is(err, ErrCanceled) {
		t.Fatalf("running query err = %v, want ErrCanceled", err)
	}

	m := srv.Metrics()
	if m.RejectedQueue != 1 || m.Expired != 1 {
		t.Fatalf("metrics after staging: %+v", m)
	}
}

// MaxQueryTime must bound a query's wall clock through the usual context
// plumbing: the answer is the best-so-far state with ErrCanceled.
func TestServerPerQueryDeadline(t *testing.T) {
	ctx := context.Background()
	eng := contradictionEngine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{MaxQueryTime: 30 * time.Millisecond, CacheEntries: -1}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	res, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 1 << 40, Seed: 1}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("deadline took %v to enforce", time.Since(start))
	}
	if res == nil || res.State == nil {
		t.Fatal("deadline-canceled query lost its best-so-far result")
	}
}

// The cache key canonicalizes options: queries differing only in
// Parallelism (whose results are identical by construction) share one
// entry, and a canceled run must never be cached.
func TestServerCacheCanonicalization(t *testing.T) {
	ctx := context.Background()
	eng := figure1Engine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r1, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 8_000, Seed: 4, Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 8_000, Seed: 4, Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if mapKey(r1) != mapKey(r2) {
		t.Fatal("parallelism variants returned different answers")
	}
	if hits := srv.Metrics().CacheHits; hits != 1 {
		t.Fatalf("CacheHits = %d, want 1 (parallelism canonicalized away)", hits)
	}
	// MaxTries 0 and 1 are the same search; they must share an entry too.
	if _, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 8_000, Seed: 4, MaxTries: 1}}); err != nil {
		t.Fatal(err)
	}
	if hits := srv.Metrics().CacheHits; hits != 2 {
		t.Fatalf("CacheHits = %d, want 2 (MaxTries 0/1 canonicalized)", hits)
	}
	// A cached answer is a private copy: mutating it must not poison the
	// cache.
	if len(r2.State) > 0 {
		r2.State[0] = !r2.State[0]
	}
	r3, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 8_000, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if mapKey(r3) != mapKey(r1) {
		t.Fatal("mutating a served answer corrupted the cache")
	}
}

// A canceled run must not poison the cache: the next identical query
// reruns and returns the full answer.
func TestServerDoesNotCacheCanceledRuns(t *testing.T) {
	ctx := context.Background()
	// Memo off: this engine's components are isomorphic, and memo sharing
	// would finish the search before the timeout below can cancel it.
	eng := contradictionEngine(t, EngineConfig{MemoEntries: -1})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := Request{Options: InferOptions{MaxFlips: 200_000, Seed: 6}}
	cctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if _, err := srv.InferMAP(cctx, req); err == nil {
		t.Fatal("expected cancellation or queue expiry")
	}
	res, err := srv.InferMAP(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.InferMAP(ctx, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if mapKey(res) != mapKey(want) {
		t.Fatal("post-cancel rerun diverges from direct engine call")
	}
	if hits := srv.Metrics().CacheHits; hits != 0 {
		t.Fatalf("CacheHits = %d; a canceled run must not be cached", hits)
	}
}

// Queued identical queries must be batched into the leader's single
// search pass, each answer bit-identical to a direct Engine call, while a
// Tracker or DisableBatching forces every query to run itself.
func TestServerBatchesIdenticalQueries(t *testing.T) {
	ctx := context.Background()
	// Unsatisfiable workload: searches spin to their flip budget, so the
	// blocker reliably holds the only slot while followers queue. Memo off
	// so no cross-query sharing short-circuits the runs.
	eng := contradictionEngine(t, EngineConfig{MemoEntries: -1})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	req := Request{Options: InferOptions{MaxFlips: 400, Seed: 6}}
	want, err := eng.InferMAP(ctx, req.Options)
	if err != nil {
		t.Fatal(err)
	}

	const followers = 5
	run := func(t *testing.T, cfg ServerConfig, reqOf func(int) Request) ServerMetrics {
		srv, err := Serve(cfg, eng)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		blockerDone := make(chan error, 1)
		go func() {
			_, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 300_000, Seed: 1}})
			blockerDone <- err
		}()
		// Wait for the blocker to occupy the slot, then stack the
		// followers in the queue behind it.
		deadline := time.Now().Add(5 * time.Second)
		for srv.Metrics().InFlight == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		var wg sync.WaitGroup
		errCh := make(chan error, followers)
		for i := 0; i < followers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := srv.InferMAP(ctx, reqOf(i))
				if err != nil {
					errCh <- err
					return
				}
				if mapKey(res) != mapKey(want) {
					errCh <- fmt.Errorf("follower %d: answer diverges from direct engine call", i)
				}
			}(i)
		}
		for srv.Metrics().Queued < followers && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if q := srv.Metrics().Queued; q != followers {
			t.Fatalf("staging failed: %d queued, want %d", q, followers)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		if err := <-blockerDone; err != nil {
			t.Fatal(err)
		}
		return srv.Metrics()
	}

	// Cache off isolates batching: the only ways a follower completes are
	// its own run or absorbing the leader's.
	base := ServerConfig{MaxInFlight: 1, MaxQueue: 64, CacheEntries: -1}

	t.Run("batched", func(t *testing.T) {
		m := run(t, base, func(int) Request { return req })
		if m.Batched != followers-1 {
			t.Fatalf("Batched = %d, want %d (one leader run, rest absorbed)", m.Batched, followers-1)
		}
		if m.Completed != 2 { // blocker + leader
			t.Fatalf("Completed = %d, want 2", m.Completed)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		cfg := base
		cfg.DisableBatching = true
		m := run(t, cfg, func(int) Request { return req })
		if m.Batched != 0 || m.Completed != int64(followers)+1 {
			t.Fatalf("batched/completed = %d/%d, want 0/%d", m.Batched, m.Completed, followers+1)
		}
	})
	t.Run("tracker-never-batched", func(t *testing.T) {
		m := run(t, base, func(i int) Request {
			r := req
			r.Options.Tracker = search.NewTracker()
			return r
		})
		if m.Batched != 0 || m.Completed != int64(followers)+1 {
			t.Fatalf("batched/completed = %d/%d, want 0/%d", m.Batched, m.Completed, followers+1)
		}
	})
}
