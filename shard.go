package tuffy

// This file is the component sharder of the distributed inference tier —
// the coordinator and worker halves of splitting ONE query's independent
// components across processes (the task-decomposition reading of the
// paper's Section 3.3: components are exactly-independent subproblems, so
// they distribute with a deterministic merge and no approximation).
//
// Worker side: Engine implements remote.Backend — Identity (the
// fingerprint handshake), InferShard (run a group of components on a
// named epoch), ApplyDelta (the update fan-out target). Per-component
// execution goes through search.RunComponent / search.RunComponentMCSAT,
// the same functions the local engine's own component loops call, so a
// component's answer is a pure function of its content and the canonical
// query options — identical in every process.
//
// Coordinator side: Server.shardMAP / shardMarginal decide whether a
// query decomposes (Auto mode, no cut clauses, no oversized parts, more
// than one component, at least one worker at the query's pinned epoch),
// LPT-balance the components over the local engine plus the eligible
// workers, dispatch the remote groups, and merge in canonical component
// order. Any remote failure — dead worker, timeout, epoch moved under the
// worker — re-runs that group on the coordinator's own pinned epoch, so a
// worker dying mid-query degrades latency, never answers, and a
// mixed-epoch merge is impossible by construction.

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/remote"
	"tuffy/internal/search"
	"tuffy/internal/wire"
)

// fingerprintShardConfig hashes the config knobs (beyond the program
// fingerprint) that shape the component decomposition and the per-
// component option derivation: the memory budget (partition granularity
// and the oversized threshold) and memo enablement (budget denominator
// and seed scheme). Coordinator and workers must agree on these for their
// per-component answers to be interchangeable.
func fingerprintShardConfig(cfg EngineConfig) uint64 {
	h := fnv.New64a()
	var b [9]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(cfg.MemoryBudgetBytes) >> (8 * i))
	}
	if cfg.MemoEntries >= 0 {
		b[8] = 1
	}
	h.Write(b[:])
	return h.Sum64()
}

// Identity reports the engine's handshake identity: program, base
// evidence and shard-config fingerprints plus the current generation.
func (e *Engine) Identity() wire.Hello {
	return wire.Hello{
		Version: wire.Version,
		ProgFP:  e.idProgFP,
		EvFP:    e.idEvFP,
		CfgFP:   e.idCfgFP,
		Epoch:   e.Generation(),
	}
}

// shardBaseOptions derives the defaulted WalkSAT base options of a MAP
// shard. One function serves the coordinator's local groups and the
// worker's InferShard, so both sides run components under literally the
// same derivation.
func shardBaseOptions(req wire.ShardRequest) search.Options {
	return search.DefaultedOptions(search.Options{
		MaxFlips: req.MaxFlips,
		MaxTries: int(req.MaxTries),
		Seed:     req.Seed,
	})
}

// shardMCSATOptions is shardBaseOptions for marginal shards.
func shardMCSATOptions(req wire.ShardRequest) search.MCSATOptions {
	return search.MCSATOptions{
		Samples: int(req.Samples),
		BurnIn:  int(req.Samples) / 10,
		Seed:    req.Seed,
	}
}

// mapShardComps returns the canonical component list of a MAP shard on
// this epoch (the partition parts as components) and their atom total —
// valid only when the partitioning has no cut clauses and no oversized
// parts, the same precondition under which InferMAP's Auto path runs
// plain component-aware search and the coordinator shards at all.
func (e *Engine) mapShardComps(ep *epoch) ([]*mrf.Component, int64, bool) {
	pt := ep.partitioning(e.partitionBeta())
	if pt.NumCut() > 0 {
		return nil, 0, false
	}
	comps := make([]*mrf.Component, len(pt.Parts))
	var total int64
	for i, p := range pt.Parts {
		if e.cfg.MemoryBudgetBytes > 0 && p.Bytes() > e.cfg.MemoryBudgetBytes {
			return nil, 0, false
		}
		comps[i] = &mrf.Component{MRF: p.Local, GlobalAtom: p.GlobalAtom}
		total += int64(p.Local.NumAtoms)
	}
	return comps, total, true
}

// InferShard runs one group of components on the requested epoch — the
// worker half of the sharder (remote.Backend). The epoch is validated
// first (a worker that saw an evidence update the query pre-dates answers
// with the typed retryable mismatch, never a wrong-epoch result), then
// the decomposition guards prove the worker derived the same component
// list the coordinator sharded over.
func (e *Engine) InferShard(ctx context.Context, req wire.ShardRequest) (wire.ShardResult, error) {
	ep, release, err := e.acquire(ctx)
	if err != nil {
		return wire.ShardResult{}, err
	}
	defer release()
	if ep.gen != req.Epoch {
		return wire.ShardResult{}, &wire.EpochMismatchError{Have: ep.gen, Want: req.Epoch}
	}
	m := ep.res.MRF
	if int(req.NumAtoms) != m.NumAtoms {
		return wire.ShardResult{}, &wire.PlanMismatchError{
			Detail: fmt.Sprintf("network has %d atoms, plan expects %d", m.NumAtoms, req.NumAtoms),
		}
	}

	res := wire.ShardResult{Epoch: ep.gen, Marginal: req.Marginal}
	if req.Marginal {
		comps := ep.components()
		if int(req.NumComps) != len(comps) {
			return wire.ShardResult{}, &wire.PlanMismatchError{
				Detail: fmt.Sprintf("epoch has %d components, plan expects %d", len(comps), req.NumComps),
			}
		}
		mo := shardMCSATOptions(req)
		for _, idx := range req.Indices {
			if int(idx) >= len(comps) {
				return wire.ShardResult{}, &wire.PlanMismatchError{
					Detail: fmt.Sprintf("component index %d out of range", idx),
				}
			}
			local, err := search.RunComponentMCSAT(ctx, comps[idx], int(idx), mo)
			if err != nil || ctx.Err() != nil {
				return wire.ShardResult{}, shardCancel(ctx, err)
			}
			res.Comps = append(res.Comps, wire.ShardComp{Index: idx, Probs: local})
		}
		return res, nil
	}

	comps, totalAtoms, ok := e.mapShardComps(ep)
	if !ok {
		return wire.ShardResult{}, &wire.PlanMismatchError{
			Detail: "epoch partitioning has cut clauses or oversized parts; not shardable",
		}
	}
	if int(req.NumComps) != len(comps) {
		return wire.ShardResult{}, &wire.PlanMismatchError{
			Detail: fmt.Sprintf("epoch has %d parts, plan expects %d", len(comps), req.NumComps),
		}
	}
	base := shardBaseOptions(req)
	for _, idx := range req.Indices {
		if int(idx) >= len(comps) {
			return wire.ShardResult{}, &wire.PlanMismatchError{
				Detail: fmt.Sprintf("part index %d out of range", idx),
			}
		}
		r := search.RunComponent(ctx, comps[idx], int(idx), totalAtoms, base, e.memo)
		if r.Best == nil || ctx.Err() != nil {
			return wire.ShardResult{}, shardCancel(ctx, nil)
		}
		res.Comps = append(res.Comps, wire.ShardComp{
			Index: idx, Cost: r.BestCost, Flips: r.Flips, State: r.Best,
		})
	}
	return res, nil
}

// shardCancel maps a canceled shard run to the wire's typed cancel error.
func shardCancel(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %v", wire.ErrRemoteCanceled, context.Cause(ctx))
	}
	if err != nil {
		return err
	}
	return wire.ErrRemoteCanceled
}

// ApplyDelta decodes and applies one fanned-out evidence delta
// (remote.Backend). Deltas set absolute truth values, so re-application
// during a catch-up replay is a logical no-op.
func (e *Engine) ApplyDelta(ctx context.Context, payload []byte) (wire.UpdateAck, error) {
	delta, err := mln.DecodeDelta(e.prog, payload)
	if err != nil {
		return wire.UpdateAck{}, fmt.Errorf("%w: %v", wire.ErrBadPayload, err)
	}
	ur, err := e.UpdateEvidence(ctx, delta)
	if err != nil {
		return wire.UpdateAck{}, err
	}
	return wire.UpdateAck{
		Epoch:          ur.Epoch,
		Identical:      ur.Identical,
		UpdatesApplied: e.UpdatesApplied(),
	}, nil
}

// ---- coordinator side ----

// lptGroups assigns component indices to executors with the Longest
// Processing Time rule: heaviest component first, each onto the currently
// lightest executor. Deterministic (ties break on lower index / lower
// executor) and independent of which executors are worker processes.
// Returns one ascending index list per executor; executors beyond the
// component count get empty groups.
func lptGroups(weights []int64, executors int) [][]uint32 {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	groups := make([][]uint32, executors)
	loads := make([]int64, executors)
	for _, idx := range order {
		best := 0
		for x := 1; x < executors; x++ {
			if loads[x] < loads[best] {
				best = x
			}
		}
		groups[best] = append(groups[best], uint32(idx))
		loads[best] += weights[idx]
	}
	for _, g := range groups {
		sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
	}
	return groups
}

// shardDeadlineMillis converts the query context's remaining deadline to
// the wire's millisecond field (0 = none).
func shardDeadlineMillis(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > int64(^uint32(0)) {
		return 0
	}
	return uint32(ms)
}

// dispatchShards runs the grouped component indices: group 0 on the local
// engine (via run), groups 1..n on their replicas, with any failed remote
// group re-run locally on the same pinned epoch. apply merges one
// component's wire result under the caller's lock; run executes one
// component locally and applies it directly. Returns the first
// cancellation-style error (remote failures are not errors — they fall
// back).
func dispatchShards(ctx context.Context, groups [][]uint32, replicas []*remote.Replica, req wire.ShardRequest, run func(ctx context.Context, idx uint32) error, apply func(c wire.ShardComp) error) error {
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
	}
	runLocal := func(indices []uint32) {
		for _, idx := range indices {
			if ctx.Err() != nil {
				fail(search.Canceled(ctx))
				return
			}
			if err := run(ctx, idx); err != nil {
				fail(err)
				return
			}
		}
	}
	var wg sync.WaitGroup
	for g, indices := range groups {
		if len(indices) == 0 {
			continue
		}
		wg.Add(1)
		go func(g int, indices []uint32) {
			defer wg.Done()
			if g == 0 {
				runLocal(indices)
				return
			}
			r := req
			r.Indices = indices
			res, err := replicas[g-1].Infer(ctx, r)
			if err == nil {
				err = checkShardResult(r, res)
			}
			if err != nil {
				// Dead worker, timeout, epoch moved, malformed answer: the
				// group degrades to the coordinator's own pinned epoch. The
				// query never fails because a worker did.
				runLocal(indices)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for _, c := range res.Comps {
				if err := apply(c); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
		}(g, indices)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// checkShardResult validates a worker's answer against its request:
// matching epoch, one component per requested index, in order. A worker
// that disagrees is treated exactly like a dead one.
func checkShardResult(req wire.ShardRequest, res wire.ShardResult) error {
	if res.Epoch != req.Epoch {
		return fmt.Errorf("shard result on epoch %d, want %d", res.Epoch, req.Epoch)
	}
	if res.Marginal != req.Marginal {
		return fmt.Errorf("shard result mode mismatch")
	}
	if len(res.Comps) != len(req.Indices) {
		return fmt.Errorf("shard result has %d components, want %d", len(res.Comps), len(req.Indices))
	}
	for i, c := range res.Comps {
		if c.Index != req.Indices[i] {
			return fmt.Errorf("shard result component %d has index %d, want %d", i, c.Index, req.Indices[i])
		}
	}
	return nil
}

// shardMAP answers one MAP query by sharding its components across the
// worker pool, merged bit-identically to Engine.InferMAP. handled=false
// means the query does not decompose here (wrong mode, tracker, cut
// clauses, oversized parts, single component, or no eligible workers)
// and the caller should run it locally as usual.
func (s *Server) shardMAP(ctx context.Context, eng *Engine, opts InferOptions) (res *MAPResult, handled bool, err error) {
	if s.pool == nil || opts.Mode != Auto || opts.Tracker != nil {
		return nil, false, nil
	}
	// The same canonicalization Engine.InferMAP applies: shard requests must
	// carry the effective values, not the zero-means-default form.
	opts = opts.withDefaults()
	ep, release, err := eng.acquire(ctx)
	if err != nil {
		return nil, true, err
	}
	defer release()
	comps, totalAtoms, ok := eng.mapShardComps(ep)
	if !ok || len(comps) < 2 {
		return nil, false, nil
	}
	replicas := s.pool.Candidates(ep.gen)
	if len(replicas) == 0 {
		return nil, false, nil
	}

	m := ep.res.MRF
	req := wire.ShardRequest{
		Epoch:          ep.gen,
		NumAtoms:       uint32(m.NumAtoms),
		NumComps:       uint32(len(comps)),
		Seed:           opts.Seed,
		MaxFlips:       opts.MaxFlips,
		MaxTries:       uint32(opts.MaxTries),
		DeadlineMillis: shardDeadlineMillis(ctx),
	}
	base := shardBaseOptions(req)

	weights := make([]int64, len(comps))
	for i, c := range comps {
		weights[i] = int64(c.Size()) + int64(len(c.MRF.Clauses))
	}
	groups := lptGroups(weights, len(replicas)+1)

	searchStart := time.Now()
	res = &MAPResult{
		GroundTime: eng.GroundTime(),
		Epoch:      ep.gen,
		Partitions: len(comps),
	}
	global := m.NewState()
	perComp := make([]float64, len(comps))
	for i, c := range comps {
		// Unfinished components contribute their all-false baseline, exactly
		// as in search.ComponentAware under cancellation.
		perComp[i] = c.MRF.Cost(c.MRF.NewState())
	}
	var mu sync.Mutex
	apply := func(c wire.ShardComp) error {
		comp := comps[c.Index]
		if len(c.State) != comp.Size()+1 {
			return fmt.Errorf("tuffy: shard state for component %d has %d atoms, want %d", c.Index, len(c.State)-1, comp.Size())
		}
		perComp[c.Index] = c.Cost
		res.Flips += c.Flips
		comp.ProjectState(c.State, global)
		return nil
	}
	run := func(ctx context.Context, idx uint32) error {
		r := search.RunComponent(ctx, comps[idx], int(idx), totalAtoms, base, eng.memo)
		if r.Best == nil {
			return search.Canceled(ctx)
		}
		mu.Lock()
		defer mu.Unlock()
		return apply(wire.ShardComp{Index: idx, Cost: r.BestCost, Flips: r.Flips, State: r.Best})
	}
	runErr := dispatchShards(ctx, groups, replicas, req, run, func(c wire.ShardComp) error {
		// dispatchShards already holds no lock here for remote groups; take
		// the same one the local path uses.
		mu.Lock()
		defer mu.Unlock()
		return apply(c)
	})

	res.State = global
	res.Cost = m.FixedCost
	for _, c := range perComp {
		res.Cost += c
	}
	res.SearchTime = time.Since(searchStart)
	res.TrueAtoms = trueAtoms(m, res.State)
	if runErr == nil && ctx.Err() != nil {
		runErr = search.Canceled(ctx)
	}
	return res, true, runErr
}

// shardMarginal is shardMAP for marginal queries: the components are the
// epoch's connected-component factorization, each sampled with its own
// deterministic MC-SAT chain, merged exactly as search.MCSATComponents
// merges them.
func (s *Server) shardMarginal(ctx context.Context, eng *Engine, opts InferOptions) (res *MarginalResult, handled bool, err error) {
	if s.pool == nil || opts.Mode != Auto {
		return nil, false, nil
	}
	opts = opts.withDefaults()
	ep, release, err := eng.acquire(ctx)
	if err != nil {
		return nil, true, err
	}
	defer release()
	if beta := eng.partitionBeta(); beta > 0 && ep.partitioning(beta).NumCut() > 0 {
		return nil, false, nil // the Gauss-Seidel MC-SAT path; not component-shardable
	}
	comps := ep.components()
	if len(comps) < 2 {
		return nil, false, nil
	}
	replicas := s.pool.Candidates(ep.gen)
	if len(replicas) == 0 {
		return nil, false, nil
	}

	m := ep.res.MRF
	req := wire.ShardRequest{
		Marginal:       true,
		Epoch:          ep.gen,
		NumAtoms:       uint32(m.NumAtoms),
		NumComps:       uint32(len(comps)),
		Seed:           opts.Seed,
		Samples:        uint32(opts.Samples),
		DeadlineMillis: shardDeadlineMillis(ctx),
	}
	mo := shardMCSATOptions(req)

	weights := make([]int64, len(comps))
	for i, c := range comps {
		weights[i] = int64(c.Size()) + int64(len(c.MRF.Clauses))
	}
	groups := lptGroups(weights, len(replicas)+1)

	probs := make([]float64, m.NumAtoms+1)
	var mu sync.Mutex
	apply := func(c wire.ShardComp) error {
		comp := comps[c.Index]
		if len(c.Probs) != comp.Size()+1 {
			return fmt.Errorf("tuffy: shard marginals for component %d have %d atoms, want %d", c.Index, len(c.Probs)-1, comp.Size())
		}
		for i := 1; i <= comp.MRF.NumAtoms; i++ {
			probs[comp.GlobalAtom[i]] = c.Probs[i]
		}
		return nil
	}
	run := func(ctx context.Context, idx uint32) error {
		local, err := search.RunComponentMCSAT(ctx, comps[idx], int(idx), mo)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return apply(wire.ShardComp{Index: idx, Probs: local})
	}
	runErr := dispatchShards(ctx, groups, replicas, req, run, func(c wire.ShardComp) error {
		mu.Lock()
		defer mu.Unlock()
		return apply(c)
	})

	res = &MarginalResult{Epoch: ep.gen}
	for a := 1; a <= m.NumAtoms; a++ {
		res.Probs = append(res.Probs, AtomProb{Atom: m.Atoms[a], P: probs[a]})
	}
	if runErr == nil && ctx.Err() != nil {
		runErr = search.Canceled(ctx)
	}
	return res, true, runErr
}

// inferMAPOn executes one admitted MAP query on the given backend,
// sharding across workers when the query decomposes and workers are
// available, and running locally otherwise. Both paths produce
// bit-identical answers.
func (s *Server) inferMAPOn(ctx context.Context, eng *Engine, opts InferOptions) (*MAPResult, error) {
	if res, handled, err := s.shardMAP(ctx, eng, opts); handled {
		return res, err
	}
	return eng.InferMAP(ctx, opts)
}

// inferMarginalOn is inferMAPOn for marginal queries.
func (s *Server) inferMarginalOn(ctx context.Context, eng *Engine, opts InferOptions) (*MarginalResult, error) {
	if res, handled, err := s.shardMarginal(ctx, eng, opts); handled {
		return res, err
	}
	return eng.InferMarginal(ctx, opts)
}
