package tuffy

// Result-cache persistence for the serving layer. With ServerConfig.DataDir
// set, Close / CheckpointCache serialize the cache to DataDir/cache.tfy and
// Serve reloads it, so a warm-started tuffyd answers its pre-crash working
// set from cache immediately.
//
// Why reloading is sound: every entry is epoch-keyed ("e<gen>|..."), and the
// cache is only written after the engines' own updates are durable, so a
// persisted entry's epoch is at most the epoch the engines recover to.
// Engine epochs are monotone and never reused; a reloaded entry therefore
// either carries the recovered epoch — in which case its answer is, by the
// engine's bit-identical replay guarantee, exactly what a fresh run would
// produce — or a superseded epoch, in which case no lookup can ever reach
// it (lookups use the current epoch's prefix) and the next sweep or FIFO
// eviction collects it.
//
// Unlike the engine snapshot, the cache file is never a source of truth: a
// missing, truncated, corrupt, or program-mismatched file just starts the
// cache empty.

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"tuffy/internal/mln"
)

const (
	cacheMagic   = "TFYCACH1"
	cacheVersion = 1
	cacheFile    = "cache.tfy"

	cacheKindMAP      = 1
	cacheKindMarginal = 2
)

// CheckpointCache atomically persists the current result cache to
// ServerConfig.DataDir. It is called by Close; exposing it separately lets
// long-running servers checkpoint the cache without shutting down.
func (s *Server) CheckpointCache() error {
	if s.cfg.DataDir == "" || !s.cache.Enabled() {
		return nil
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	eng := s.backends[0].eng
	predIdx := make(map[*mln.Predicate]int32, len(eng.prog.Preds))
	for i, p := range eng.prog.Preds {
		predIdx[p] = int32(i)
	}
	w := &enc{}
	w.b = append(w.b, cacheMagic...)
	w.u32(cacheVersion)
	w.u64(fingerprintProgram(eng.prog, eng.cfg))
	nOff := len(w.b)
	w.u32(0) // entry count, patched below
	n := uint32(0)
	s.cache.ForEach(func(key string, v any) {
		switch r := v.(type) {
		case *MAPResult:
			w.str(key)
			w.u8(cacheKindMAP)
			encodeMAPResult(w, predIdx, r)
			n++
		case *MarginalResult:
			w.str(key)
			w.u8(cacheKindMarginal)
			encodeMarginalResult(w, predIdx, r)
			n++
		}
	})
	w.b[nOff] = byte(n)
	w.b[nOff+1] = byte(n >> 8)
	w.b[nOff+2] = byte(n >> 16)
	w.b[nOff+3] = byte(n >> 24)
	w.u32(crc32.Checksum(w.b, snapCRCTable))

	path := filepath.Join(s.cfg.DataDir, cacheFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, w.b, 0o644); err != nil {
		return err
	}
	if err := fsyncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(s.cfg.DataDir)
}

// loadCache refills the cache from DataDir/cache.tfy. Any defect —
// missing file, bad CRC, version or program mismatch, malformed entry —
// abandons the load and starts empty; partial loads keep the entries
// decoded before the defect (each was independently validated).
func (s *Server) loadCache() {
	buf, err := os.ReadFile(filepath.Join(s.cfg.DataDir, cacheFile))
	if err != nil || len(buf) < len(cacheMagic)+4+8+4+4 {
		return
	}
	if string(buf[:len(cacheMagic)]) != cacheMagic {
		return
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, snapCRCTable) != uint32(tail[0])|uint32(tail[1])<<8|uint32(tail[2])<<16|uint32(tail[3])<<24 {
		return
	}
	eng := s.backends[0].eng
	d := &dec{b: body, off: len(cacheMagic)}
	if d.u32() != cacheVersion {
		return
	}
	if d.u64() != fingerprintProgram(eng.prog, eng.cfg) {
		return
	}
	n := int(d.u32())
	for i := 0; i < n; i++ {
		key := d.str()
		kind := d.u8()
		if d.err != nil {
			return
		}
		switch kind {
		case cacheKindMAP:
			r := decodeMAPResult(d, eng.prog)
			if d.err != nil {
				return
			}
			s.cache.Put(key, r)
		case cacheKindMarginal:
			r := decodeMarginalResult(d, eng.prog)
			if d.err != nil {
				return
			}
			s.cache.Put(key, r)
		default:
			return
		}
	}
}

func encodeAtom(w *enc, predIdx map[*mln.Predicate]int32, a mln.GroundAtom) {
	w.u32(uint32(predIdx[a.Pred]))
	for _, arg := range a.Args {
		w.u32(uint32(arg))
	}
}

func decodeAtom(d *dec, prog *mln.Program) mln.GroundAtom {
	pi := int(d.u32())
	if d.err != nil || pi < 0 || pi >= len(prog.Preds) {
		d.err = errShortBuffer
		return mln.GroundAtom{}
	}
	pred := prog.Preds[pi]
	args := make([]int32, pred.Arity())
	for k := range args {
		args[k] = int32(d.u32())
	}
	return mln.GroundAtom{Pred: pred, Args: args}
}

func encodeMAPResult(w *enc, predIdx map[*mln.Predicate]int32, r *MAPResult) {
	w.u64(r.Epoch)
	w.f64(r.Cost)
	w.u64(uint64(r.Flips))
	w.u64(uint64(r.GroundTime))
	w.u64(uint64(r.SearchTime))
	w.u32(uint32(r.Partitions))
	w.u32(uint32(r.CutClauses))
	w.u32(uint32(r.InDBComponents))
	w.u32(uint32(len(r.TrueAtoms)))
	for _, a := range r.TrueAtoms {
		encodeAtom(w, predIdx, a)
	}
	w.u32(uint32(len(r.State)))
	packed := make([]byte, (len(r.State)+7)/8)
	for i, v := range r.State {
		if v {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	w.b = append(w.b, packed...)
}

func decodeMAPResult(d *dec, prog *mln.Program) *MAPResult {
	r := &MAPResult{}
	r.Epoch = d.u64()
	r.Cost = d.f64()
	r.Flips = int64(d.u64())
	r.GroundTime = time.Duration(d.u64())
	r.SearchTime = time.Duration(d.u64())
	r.Partitions = int(d.u32())
	r.CutClauses = int(d.u32())
	r.InDBComponents = int(d.u32())
	na := int(d.u32())
	if d.err != nil || na < 0 || na > len(d.b) {
		d.err = errShortBuffer
		return nil
	}
	r.TrueAtoms = make([]mln.GroundAtom, 0, na)
	for i := 0; i < na; i++ {
		r.TrueAtoms = append(r.TrueAtoms, decodeAtom(d, prog))
		if d.err != nil {
			return nil
		}
	}
	ns := int(d.u32())
	if d.err != nil || ns < 0 || (ns+7)/8 > len(d.b)-d.off {
		d.err = errShortBuffer
		return nil
	}
	packed := d.take((ns + 7) / 8)
	r.State = make([]bool, ns)
	for i := range r.State {
		r.State[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	return r
}

func encodeMarginalResult(w *enc, predIdx map[*mln.Predicate]int32, r *MarginalResult) {
	w.u64(r.Epoch)
	w.u32(uint32(len(r.Probs)))
	for _, p := range r.Probs {
		encodeAtom(w, predIdx, p.Atom)
		w.f64(p.P)
	}
}

func decodeMarginalResult(d *dec, prog *mln.Program) *MarginalResult {
	r := &MarginalResult{}
	r.Epoch = d.u64()
	np := int(d.u32())
	if d.err != nil || np < 0 || np > len(d.b) {
		d.err = errShortBuffer
		return nil
	}
	r.Probs = make([]AtomProb, 0, np)
	for i := 0; i < np; i++ {
		a := decodeAtom(d, prog)
		p := d.f64()
		if d.err != nil {
			return nil
		}
		r.Probs = append(r.Probs, AtomProb{Atom: a, P: p})
	}
	return r
}
