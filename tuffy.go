// Package tuffy is a from-scratch Go implementation of Tuffy (Niu, Ré,
// Doan, Shavlik; VLDB 2011): a Markov Logic Network inference engine that
// grounds MLNs bottom-up inside an embedded relational engine and searches
// in memory, with component detection, MRF partitioning, batch loading,
// parallel component search, Gauss-Seidel partition-aware search and MC-SAT
// marginal inference.
//
// Quick start:
//
//	prog, _ := tuffy.LoadProgramString(src)
//	ev, _ := tuffy.LoadEvidenceString(prog, evidence)
//	sys := tuffy.New(prog, ev, tuffy.Config{})
//	res, _ := sys.InferMAP()
//	for _, atom := range res.TrueAtoms { fmt.Println(atom.Format(prog.Syms)) }
package tuffy

import (
	"fmt"
	"io"
	"math"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/plan"
	"tuffy/internal/grounding"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// GrounderKind selects the grounding strategy.
type GrounderKind int

const (
	// BottomUp compiles clauses to SQL over the embedded RDBMS (the
	// paper's contribution, Section 3.1). The default.
	BottomUp GrounderKind = iota
	// TopDown is the Alchemy-style nested-loop baseline.
	TopDown
)

// SearchMode selects where search runs.
type SearchMode int

const (
	// Auto uses partitioned in-memory search, falling back to in-database
	// search when a partition exceeds the memory budget.
	Auto SearchMode = iota
	// InMemoryMonolithic is Tuffy-p: one in-memory WalkSAT on the whole
	// MRF (no partitioning).
	InMemoryMonolithic
	// InDatabase is Tuffy-mm: WalkSAT over the RDBMS clause table.
	InDatabase
)

// Config tunes the system. The zero value is the paper's default Tuffy:
// bottom-up grounding, component partitioning, single-threaded search.
type Config struct {
	Grounder   GrounderKind
	Mode       SearchMode
	UseClosure bool // lazy-inference active closure (Appendix A.3)

	// Partitioning: 0 keeps whole connected components (Section 3.3); a
	// positive MemoryBudgetBytes further splits components so each
	// partition's search footprint fits (Section 3.4), searched with
	// Gauss-Seidel when clauses are cut.
	MemoryBudgetBytes int64
	// GaussSeidelRounds is T in the partition-aware scheme (default 3).
	GaussSeidelRounds int
	// Parallelism is the number of search workers (default 1, matching the
	// paper's single-thread experiments). It drives component-aware search,
	// the partitions within one color class of a Gauss-Seidel round, and
	// per-component/partitioned MC-SAT; results are identical for every
	// value.
	Parallelism int
	// GroundWorkers is the number of concurrent clause-grounding workers for
	// the bottom-up grounder (default 1). Results are identical for every
	// worker count; see grounding.Options.Workers.
	GroundWorkers int

	// Search budget.
	MaxFlips int64 // total flips (default 1e6)
	MaxTries int
	Seed     int64

	// Tracker receives best-cost-over-time samples (time-cost plots).
	Tracker *search.Tracker

	// DB overrides the embedded engine configuration (buffer pool size,
	// optimizer lesion knobs, disk latency injection).
	DB db.Config
}

// System is one inference instance over a program and its evidence.
type System struct {
	cfg  Config
	Prog *mln.Program
	Ev   *mln.Evidence

	DB       *db.DB
	Tables   *grounding.TableSet
	Grounded *grounding.Result

	GroundTime time.Duration
}

// New creates a system. Call Ground (or InferMAP, which grounds on demand)
// next.
func New(prog *mln.Program, ev *mln.Evidence, cfg Config) *System {
	if cfg.MaxFlips == 0 {
		cfg.MaxFlips = 1_000_000
	}
	if cfg.GaussSeidelRounds == 0 {
		cfg.GaussSeidelRounds = 3
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.GroundWorkers == 0 {
		cfg.GroundWorkers = 1
	}
	return &System{cfg: cfg, Prog: prog, Ev: ev, DB: db.Open(cfg.DB)}
}

// LoadProgram parses an MLN program.
func LoadProgram(r io.Reader) (*mln.Program, error) { return mln.ParseProgram(r) }

// LoadProgramString parses an MLN program from a string.
func LoadProgramString(s string) (*mln.Program, error) { return mln.ParseProgramString(s) }

// LoadEvidence parses evidence for a program.
func LoadEvidence(prog *mln.Program, r io.Reader) (*mln.Evidence, error) {
	return mln.ParseEvidence(prog, r)
}

// LoadEvidenceString parses evidence from a string.
func LoadEvidenceString(prog *mln.Program, s string) (*mln.Evidence, error) {
	return mln.ParseEvidenceString(prog, s)
}

// SetPlanOptions adjusts the engine's optimizer knobs (the Table 6 lesion
// study) before grounding.
func (s *System) SetPlanOptions(o plan.Options) { s.DB.SetPlanOptions(o) }

// Ground builds the predicate tables and runs the configured grounder.
func (s *System) Ground() error {
	start := time.Now()
	ts, err := grounding.BuildTables(s.DB, s.Prog, s.Ev)
	if err != nil {
		return err
	}
	s.Tables = ts
	opts := grounding.Options{UseClosure: s.cfg.UseClosure, Workers: s.cfg.GroundWorkers}
	switch s.cfg.Grounder {
	case TopDown:
		s.Grounded, err = grounding.GroundTopDown(ts, opts)
	default:
		s.Grounded, err = grounding.GroundBottomUp(ts, opts)
	}
	if err != nil {
		return err
	}
	s.GroundTime = time.Since(start)
	return nil
}

// MAPResult is the outcome of MAP inference.
type MAPResult struct {
	// Cost of the best world found (Eq. 1; +Inf if hard clauses could not
	// all be satisfied).
	Cost float64
	// TrueAtoms are the query atoms inferred true (excluding evidence).
	TrueAtoms []mln.GroundAtom
	// State is the raw best assignment over the MRF atoms.
	State []bool
	// Flips performed during search.
	Flips int64
	// GroundTime and SearchTime break down the run.
	GroundTime time.Duration
	SearchTime time.Duration
	// Partitions and CutClauses describe the partitioning used (0/0 when
	// monolithic).
	Partitions int
	CutClauses int
	// InDBComponents counts components that exceeded the memory budget and
	// were searched inside the RDBMS (the hybrid fallback of Section 3.2).
	InDBComponents int
}

// InferMAP runs the full pipeline: grounding (if not already done),
// partitioning per the configuration, then search.
func (s *System) InferMAP() (*MAPResult, error) {
	if s.Grounded == nil {
		if err := s.Ground(); err != nil {
			return nil, err
		}
	}
	m := s.Grounded.MRF
	res := &MAPResult{GroundTime: s.GroundTime}
	searchStart := time.Now()

	base := search.Options{
		MaxFlips: s.cfg.MaxFlips,
		MaxTries: s.cfg.MaxTries,
		Seed:     s.cfg.Seed,
		Tracker:  s.cfg.Tracker,
	}

	switch s.cfg.Mode {
	case InDatabase:
		if err := mrf.Store(m, s.DB, "mrf_clauses"); err != nil {
			return nil, err
		}
		r, err := search.RDBMSWalkSAT(s.DB, "mrf_clauses", m.NumAtoms, base)
		if err != nil {
			return nil, err
		}
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips

	case InMemoryMonolithic:
		r := search.Monolithic(m, base)
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips

	default: // Auto: partitioned
		pt := partition.Algorithm3(m, s.partitionBeta())
		res.Partitions = len(pt.Parts)
		res.CutClauses = pt.NumCut()
		if pt.NumCut() > 0 {
			r, err := search.GaussSeidel(pt, search.GaussSeidelOptions{
				Base:        base,
				Rounds:      s.cfg.GaussSeidelRounds,
				Parallelism: s.cfg.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			res.Cost = r.BestCost
			res.State = r.Best
			res.Flips = r.Flips
		} else {
			// Hybrid fallback (Section 3.2): components whose search
			// footprint exceeds the memory budget are searched inside the
			// RDBMS (Tuffy-mm); the rest run in memory.
			var inMem []*mrf.Component
			var oversized []*partition.Part
			for _, p := range pt.Parts {
				if s.cfg.MemoryBudgetBytes > 0 && p.Bytes() > s.cfg.MemoryBudgetBytes {
					oversized = append(oversized, p)
					continue
				}
				inMem = append(inMem, &mrf.Component{MRF: p.Local, GlobalAtom: p.GlobalAtom})
			}
			r := search.ComponentAware(m, inMem, search.ComponentOptions{
				Base:        base,
				Parallelism: s.cfg.Parallelism,
			})
			res.Cost = r.BestCost
			res.State = r.Best
			res.Flips = r.Flips
			for i, p := range oversized {
				table := fmt.Sprintf("mrf_part_%d", i)
				if err := mrf.Store(p.Local, s.DB, table); err != nil {
					return nil, err
				}
				rp, err := search.RDBMSWalkSAT(s.DB, table, p.Local.NumAtoms, search.Options{
					MaxFlips: base.MaxFlips / 100, // in-DB flips are ~orders slower
					Seed:     base.Seed + int64(i),
				})
				if err != nil {
					return nil, err
				}
				p.ProjectState(rp.Best, res.State)
				res.Cost += rp.BestCost
				res.Flips += rp.Flips
				res.InDBComponents++
			}
		}
	}

	res.SearchTime = time.Since(searchStart)
	res.TrueAtoms = s.trueAtoms(res.State)
	return res, nil
}

// partitionBeta converts the memory budget to Algorithm 3's size-unit bound
// (SearchBytes ≈ 20 bytes per size unit, i.e. per atom or literal); 0 means
// no budget, which keeps whole connected components.
func (s *System) partitionBeta() int {
	if s.cfg.MemoryBudgetBytes <= 0 {
		return 0
	}
	return int(s.cfg.MemoryBudgetBytes / 20)
}

// trueAtoms maps the best state back to ground atoms inferred true.
func (s *System) trueAtoms(state []bool) []mln.GroundAtom {
	if state == nil {
		return nil
	}
	var out []mln.GroundAtom
	m := s.Grounded.MRF
	for a := 1; a <= m.NumAtoms && a < len(state); a++ {
		if state[a] && m.Atoms != nil {
			out = append(out, m.Atoms[a])
		}
	}
	return out
}

// MarginalResult reports per-atom marginal probabilities.
type MarginalResult struct {
	// Probs[i] pairs a query atom with its estimated Pr[atom = true].
	Probs []AtomProb
}

// AtomProb is one atom's marginal.
type AtomProb struct {
	Atom mln.GroundAtom
	P    float64
}

// InferMarginal estimates marginal probabilities with MC-SAT (Appendix
// A.5). Samples defaults to 200.
func (s *System) InferMarginal(samples int) (*MarginalResult, error) {
	if s.Grounded == nil {
		if err := s.Ground(); err != nil {
			return nil, err
		}
	}
	if samples == 0 {
		samples = 200
	}
	m := s.Grounded.MRF
	opts := search.MCSATOptions{
		Samples: samples,
		BurnIn:  samples / 10,
		Seed:    s.cfg.Seed,
	}
	// The distribution factorizes over connected components, so sample
	// each independently (and in parallel) — the marginal-inference
	// counterpart of component-aware MAP search. With a memory budget that
	// splits components, the partitioned Gauss-Seidel MC-SAT path samples
	// partitions color class by color class instead. Partitioning is only
	// attempted when a budget is set: with beta=0 Algorithm3 would yield
	// the connected components (never a cut), so running it would
	// duplicate the MRF's clauses for nothing.
	var probs []float64
	var err error
	var pt *partition.Partitioning
	if beta := s.partitionBeta(); beta > 0 && s.cfg.Mode == Auto {
		pt = partition.Algorithm3(m, beta)
	}
	if pt != nil && pt.NumCut() > 0 {
		probs, err = search.GaussMCSAT(pt, opts, s.cfg.Parallelism)
	} else if comps := m.Components(true); len(comps) > 1 && s.cfg.Mode == Auto {
		probs, err = search.MCSATComponents(m, comps, opts, s.cfg.Parallelism)
	} else {
		probs, err = search.MCSAT(m, opts)
	}
	if err != nil {
		return nil, err
	}
	out := &MarginalResult{}
	for a := 1; a <= m.NumAtoms; a++ {
		out.Probs = append(out.Probs, AtomProb{Atom: m.Atoms[a], P: probs[a]})
	}
	return out, nil
}

// FormatAtom renders a ground atom with the system's symbol table.
func (s *System) FormatAtom(a mln.GroundAtom) string { return a.Format(s.Prog.Syms) }

// Stats exposes grounding statistics after Ground.
func (s *System) Stats() (grounding.Stats, error) {
	if s.Grounded == nil {
		return grounding.Stats{}, fmt.Errorf("tuffy: not grounded yet")
	}
	return s.Grounded.Stats, nil
}

// MRFStats exposes the grounded network's size accounting.
func (s *System) MRFStats() (mrf.Stats, error) {
	if s.Grounded == nil {
		return mrf.Stats{}, fmt.Errorf("tuffy: not grounded yet")
	}
	return s.Grounded.MRF.ComputeStats(), nil
}

// OptimalIsInfeasible reports whether grounding already proved the hard
// constraints unsatisfiable (a hard clause violated by evidence).
func (s *System) OptimalIsInfeasible() bool {
	return s.Grounded != nil && math.IsInf(s.Grounded.MRF.FixedCost, 1)
}
