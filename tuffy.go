// Package tuffy is a from-scratch Go implementation of Tuffy (Niu, Ré,
// Doan, Shavlik; VLDB 2011): a Markov Logic Network inference engine that
// grounds MLNs bottom-up inside an embedded relational engine and searches
// in memory, with component detection, MRF partitioning, batch loading,
// parallel component search, Gauss-Seidel partition-aware search and MC-SAT
// marginal inference.
//
// The API splits the pipeline the way the paper does: an Engine owns the
// expensive one-time phase (parsing, evidence load, bottom-up grounding in
// the RDBMS, partitioning) and is immutable after Ground; each inference is
// a per-call query with its own options, safe to issue from many goroutines
// at once over the same grounded network.
//
// Quick start:
//
//	prog, _ := tuffy.LoadProgramString(src)
//	ev, _ := tuffy.LoadEvidenceString(prog, evidence)
//	eng := tuffy.Open(prog, ev, tuffy.EngineConfig{})
//	if err := eng.Ground(ctx); err != nil { ... }
//	res, _ := eng.InferMAP(ctx, tuffy.InferOptions{Seed: 1})
//	for _, atom := range res.TrueAtoms { fmt.Println(eng.FormatAtom(atom)) }
//
// Concurrent serving: after Ground, any number of goroutines may call
// InferMAP / InferMarginal concurrently with distinct InferOptions; each
// call owns its RNG, tracker and helper tables (collision-free names), and
// every result is bit-identical to the same call run alone. Cancellation:
// every method takes a context; a canceled search returns ErrCanceled
// together with the best result found so far.
//
// For production traffic, Serve wraps one or more grounded Engines in an
// admission-controlled scheduler: a bounded priority queue, per-query
// budget caps with typed rejections, wall-clock deadlines, a result cache
// keyed by canonicalized options, and metrics. cmd/tuffyd exposes the same
// layer over HTTP.
package tuffy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/plan"
	"tuffy/internal/grounding"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// GrounderKind selects the grounding strategy.
type GrounderKind int

const (
	// BottomUp compiles clauses to SQL over the embedded RDBMS (the
	// paper's contribution, Section 3.1). The default.
	BottomUp GrounderKind = iota
	// TopDown is the Alchemy-style nested-loop baseline.
	TopDown
)

// SearchMode selects where search runs. It is a per-query choice: one
// grounded Engine can serve all three modes.
type SearchMode int

const (
	// Auto uses partitioned in-memory search, falling back to in-database
	// search when a partition exceeds the memory budget.
	Auto SearchMode = iota
	// InMemoryMonolithic is Tuffy-p: one in-memory WalkSAT on the whole
	// MRF (no partitioning).
	InMemoryMonolithic
	// InDatabase is Tuffy-mm: WalkSAT over the RDBMS clause table.
	InDatabase
)

// ErrCanceled is matched (via errors.Is) by the error inference methods
// return when their context is canceled or times out. The accompanying
// result is still valid: it holds the best answer found before the stop.
var ErrCanceled = search.ErrCanceled

// EngineConfig fixes the one-time phase of an Engine: grounding strategy
// and partitioning budget. Everything per-query lives in InferOptions.
// The zero value is the paper's default Tuffy: bottom-up grounding,
// component partitioning, single-threaded grounding.
type EngineConfig struct {
	Grounder   GrounderKind
	UseClosure bool // lazy-inference active closure (Appendix A.3)

	// MemoryBudgetBytes controls partitioning: 0 keeps whole connected
	// components (Section 3.3); a positive budget further splits components
	// so each partition's search footprint fits (Section 3.4), searched
	// with Gauss-Seidel when clauses are cut.
	MemoryBudgetBytes int64

	// GroundWorkers is the number of concurrent clause-grounding workers
	// for the bottom-up grounder (default 1). Results are identical for
	// every worker count; see grounding.Options.Workers.
	GroundWorkers int

	// DB overrides the embedded engine configuration (buffer pool size,
	// optimizer lesion knobs, disk latency injection).
	DB db.Config
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.GroundWorkers == 0 {
		c.GroundWorkers = 1
	}
	return c
}

// InferOptions are the per-query knobs of one InferMAP / InferMarginal
// call. The zero value runs the paper's defaults. Distinct concurrent
// queries may use any mix of options; none of them mutates Engine state.
type InferOptions struct {
	// Mode selects where this query's search runs (Auto by default).
	Mode SearchMode

	// Seed drives the query's deterministic RNG streams.
	Seed int64
	// MaxFlips is the total WalkSAT flip budget (default 1e6).
	MaxFlips int64
	// MaxTries restarts WalkSAT with fresh random states (default 1).
	MaxTries int

	// GaussSeidelRounds is T in the partition-aware scheme (default 3).
	GaussSeidelRounds int
	// Parallelism is the number of search workers for this query (default
	// 1, matching the paper's single-thread experiments). It drives
	// component-aware search, the partitions within one color class of a
	// Gauss-Seidel round, and per-component/partitioned MC-SAT; results
	// are identical for every value.
	Parallelism int

	// Samples is the number of MC-SAT samples for InferMarginal (default
	// 200); ignored by InferMAP.
	Samples int

	// Tracker receives this query's best-cost-over-time samples; may be
	// nil. Each query should use its own Tracker.
	Tracker *search.Tracker
}

func (o InferOptions) withDefaults() InferOptions {
	if o.MaxFlips == 0 {
		o.MaxFlips = 1_000_000
	}
	// The search layer defaults 0 tries to 1; doing it here too keeps the
	// canonical form the serving layer's cache keys rely on (0 and 1 are
	// the same query).
	if o.MaxTries == 0 {
		o.MaxTries = 1
	}
	if o.GaussSeidelRounds == 0 {
		o.GaussSeidelRounds = 3
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	if o.Samples == 0 {
		o.Samples = 200
	}
	return o
}

// Engine owns one program, its evidence and the grounded network. Ground
// runs the one-time phase; after it returns the Engine is immutable and
// InferMAP / InferMarginal may be called from any number of goroutines
// concurrently.
type Engine struct {
	cfg  EngineConfig
	prog *mln.Program
	ev   *mln.Evidence
	db   *db.DB

	// groundMu guards the ground-once state; after groundDone the fields
	// are read-only and queries read them without locking.
	groundMu   sync.Mutex
	groundDone bool
	tables     *grounding.TableSet
	grounded   *grounding.Result
	groundTime time.Duration

	// partOnce caches the partitioning (Algorithm 3 under the configured
	// budget); it is deterministic, so all queries share one copy.
	partOnce sync.Once
	part     *partition.Partitioning

	// compOnce caches the connected components used by marginal inference.
	compOnce sync.Once
	comps    []*mrf.Component

	// clauseOnce stores the grounded MRF into the shared read-only clause
	// table that InDatabase-mode queries search over.
	clauseOnce  sync.Once
	clauseErr   error
	clauseTable string
}

// Open creates an Engine over a parsed program and its evidence. Call
// Ground next (or InferMAP / InferMarginal, which ground on demand).
func Open(prog *mln.Program, ev *mln.Evidence, cfg EngineConfig) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{cfg: cfg, prog: prog, ev: ev, db: db.Open(cfg.DB)}
}

// LoadProgram parses an MLN program.
func LoadProgram(r io.Reader) (*mln.Program, error) { return mln.ParseProgram(r) }

// LoadProgramString parses an MLN program from a string.
func LoadProgramString(s string) (*mln.Program, error) { return mln.ParseProgramString(s) }

// LoadEvidence parses evidence for a program.
func LoadEvidence(prog *mln.Program, r io.Reader) (*mln.Evidence, error) {
	return mln.ParseEvidence(prog, r)
}

// LoadEvidenceString parses evidence from a string.
func LoadEvidenceString(prog *mln.Program, s string) (*mln.Evidence, error) {
	return mln.ParseEvidenceString(prog, s)
}

// SetPlanOptions adjusts the embedded engine's optimizer knobs (the Table 6
// lesion study). Call it before Ground.
func (e *Engine) SetPlanOptions(o plan.Options) { e.db.SetPlanOptions(o) }

// DB exposes the embedded relational engine (for experiments and stats).
func (e *Engine) DB() *db.DB { return e.db }

// Prog returns the program the engine serves.
func (e *Engine) Prog() *mln.Program { return e.prog }

// Ev returns the evidence the engine was opened with.
func (e *Engine) Ev() *mln.Evidence { return e.ev }

// Tables returns the predicate tables built by Ground (nil before). Safe
// to call concurrently with an in-flight Ground.
func (e *Engine) Tables() *grounding.TableSet {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	return e.tables
}

// Grounded returns the grounding result (nil before Ground). Safe to call
// concurrently with an in-flight Ground.
func (e *Engine) Grounded() *grounding.Result {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	return e.grounded
}

// GroundTime reports how long the grounding phase took.
func (e *Engine) GroundTime() time.Duration {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	return e.groundTime
}

// Ground builds the predicate tables and runs the configured grounder.
// Concurrent and repeated calls share one successful grounding run. A
// failed (or canceled) Ground tears its half-built predicate tables down
// and leaves the Engine un-grounded, so it can be re-Grounded in place —
// a canceled Ground followed by a retry behaves like a first Ground.
func (e *Engine) Ground(ctx context.Context) error {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	if e.groundDone {
		return nil
	}
	if err := e.ground(ctx); err != nil {
		return err
	}
	e.groundDone = true
	return nil
}

func (e *Engine) ground(ctx context.Context) error {
	// Grounding is now retryable in place, so a dead context must not pay
	// for a full table build it would immediately tear down — retries
	// under a too-short deadline would repeat that cycle every attempt.
	if ctx.Err() != nil {
		return search.Canceled(ctx)
	}
	start := time.Now()
	ts, err := grounding.BuildTables(e.db, e.prog, e.ev)
	if err != nil {
		return err
	}
	e.tables = ts
	opts := grounding.Options{UseClosure: e.cfg.UseClosure, Workers: e.cfg.GroundWorkers}
	var res *grounding.Result
	switch e.cfg.Grounder {
	case TopDown:
		res, err = grounding.GroundTopDown(ctx, ts, opts)
	default:
		res, err = grounding.GroundBottomUp(ctx, ts, opts)
	}
	if err != nil {
		// Tear the predicate tables down so a retry rebuilds them from a
		// clean catalog (their pages return to the engine's free lists).
		ts.Drop()
		e.tables = nil
		// Wrap only genuine cancellations (the grounders return the
		// context's cause when they stop); a real grounding failure that
		// merely coincides with an expired deadline keeps its own error.
		if ctx.Err() != nil && errors.Is(err, context.Cause(ctx)) {
			return search.Canceled(ctx)
		}
		return err
	}
	e.grounded = res
	e.groundTime = time.Since(start)
	return nil
}

// ensureGround grounds on demand for the inference entry points; Ground's
// mutex both latches the single run and publishes the grounded fields to
// queries racing the first call.
func (e *Engine) ensureGround(ctx context.Context) error {
	return e.Ground(ctx)
}

// partitionBeta converts the memory budget to Algorithm 3's size-unit
// bound (SearchBytes ≈ 20 bytes per size unit, i.e. per atom or literal);
// 0 means no budget, which keeps whole connected components.
func (e *Engine) partitionBeta() int {
	if e.cfg.MemoryBudgetBytes <= 0 {
		return 0
	}
	return int(e.cfg.MemoryBudgetBytes / 20)
}

// partitioning lazily computes (once) the Algorithm 3 partitioning every
// Auto-mode query shares. Algorithm 3 is deterministic and the searches
// never mutate the Partitioning, so sharing preserves bit-identical
// results.
func (e *Engine) partitioning() *partition.Partitioning {
	e.partOnce.Do(func() {
		e.part = partition.Algorithm3(e.grounded.MRF, e.partitionBeta())
	})
	return e.part
}

// components lazily computes (once) the connected components marginal
// inference factorizes over.
func (e *Engine) components() []*mrf.Component {
	e.compOnce.Do(func() {
		e.comps = e.grounded.MRF.Components(true)
	})
	return e.comps
}

// ensureClauseTable stores the grounded MRF into the shared read-only
// clause table for InDatabase queries (once; concurrent queries share it).
func (e *Engine) ensureClauseTable() (string, error) {
	e.clauseOnce.Do(func() {
		e.clauseTable = "mrf_clauses"
		e.clauseErr = mrf.Store(e.grounded.MRF, e.db, e.clauseTable)
	})
	return e.clauseTable, e.clauseErr
}

// MAPResult is the outcome of MAP inference.
type MAPResult struct {
	// Cost of the best world found (Eq. 1; +Inf if hard clauses could not
	// all be satisfied).
	Cost float64
	// TrueAtoms are the query atoms inferred true (excluding evidence).
	TrueAtoms []mln.GroundAtom
	// State is the raw best assignment over the MRF atoms.
	State []bool
	// Flips performed during search.
	Flips int64
	// GroundTime and SearchTime break down the run.
	GroundTime time.Duration
	SearchTime time.Duration
	// Partitions and CutClauses describe the partitioning used (0/0 when
	// monolithic).
	Partitions int
	CutClauses int
	// InDBComponents counts components that exceeded the memory budget and
	// were searched inside the RDBMS (the hybrid fallback of Section 3.2).
	InDBComponents int
}

// InferMAP runs one MAP query: grounding (if not already done), then
// search per the per-call options. Safe for concurrent use: any number of
// goroutines may query one grounded Engine at once, and each result is
// bit-identical to the same query run alone.
//
// If ctx is canceled mid-search, InferMAP returns the best result found so
// far together with an error matching ErrCanceled.
func (e *Engine) InferMAP(ctx context.Context, opts InferOptions) (*MAPResult, error) {
	opts = opts.withDefaults()
	if err := e.ensureGround(ctx); err != nil {
		return nil, err
	}
	m := e.grounded.MRF
	res := &MAPResult{GroundTime: e.groundTime}
	searchStart := time.Now()

	base := search.Options{
		MaxFlips: opts.MaxFlips,
		MaxTries: opts.MaxTries,
		Seed:     opts.Seed,
		Tracker:  opts.Tracker,
	}

	finish := func(err error) (*MAPResult, error) {
		res.SearchTime = time.Since(searchStart)
		res.TrueAtoms = e.trueAtoms(res.State)
		return res, err
	}

	switch opts.Mode {
	case InDatabase:
		table, err := e.ensureClauseTable()
		if err != nil {
			return nil, err
		}
		r, err := search.RDBMSWalkSAT(ctx, e.db, table, m.NumAtoms, base)
		if err != nil && !errors.Is(err, ErrCanceled) {
			return nil, err
		}
		if r == nil { // canceled before the search state was built
			res.Cost = math.Inf(1)
			return finish(err)
		}
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips
		return finish(err)

	case InMemoryMonolithic:
		r, err := search.Monolithic(ctx, m, base)
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips
		return finish(err)

	default: // Auto: partitioned
		pt := e.partitioning()
		res.Partitions = len(pt.Parts)
		res.CutClauses = pt.NumCut()
		if pt.NumCut() > 0 {
			r, err := search.GaussSeidel(ctx, pt, search.GaussSeidelOptions{
				Base:        base,
				Rounds:      opts.GaussSeidelRounds,
				Parallelism: opts.Parallelism,
			})
			if err != nil && !errors.Is(err, ErrCanceled) {
				return nil, err
			}
			res.Cost = r.BestCost
			res.State = r.Best
			res.Flips = r.Flips
			return finish(err)
		}
		// Hybrid fallback (Section 3.2): components whose search footprint
		// exceeds the memory budget are searched inside the RDBMS
		// (Tuffy-mm); the rest run in memory.
		var inMem []*mrf.Component
		var oversized []*partition.Part
		for _, p := range pt.Parts {
			if e.cfg.MemoryBudgetBytes > 0 && p.Bytes() > e.cfg.MemoryBudgetBytes {
				oversized = append(oversized, p)
				continue
			}
			inMem = append(inMem, &mrf.Component{MRF: p.Local, GlobalAtom: p.GlobalAtom})
		}
		r, err := search.ComponentAware(ctx, m, inMem, search.ComponentOptions{
			Base:        base,
			Parallelism: opts.Parallelism,
		})
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips
		if err != nil {
			return finish(err)
		}
		// In-DB flips are orders of magnitude slower, so oversized
		// components get 1% of the budget — clamped to at least one flip so
		// they still search when the total budget is tiny.
		inDBFlips := search.ClampFlips(base.MaxFlips/100, 0)
		for i, p := range oversized {
			if ctx.Err() != nil {
				return finish(search.Canceled(ctx))
			}
			// Per-query table name: concurrent queries must not collide in
			// the catalog; dropping the table afterwards returns its pages
			// to the engine's free list.
			table := mrf.QueryTableName("mrf_part")
			if err := mrf.Store(p.Local, e.db, table); err != nil {
				return nil, err
			}
			rp, rerr := search.RDBMSWalkSAT(ctx, e.db, table, p.Local.NumAtoms, search.Options{
				MaxFlips: inDBFlips,
				Seed:     base.Seed + int64(i),
			})
			if derr := e.db.DropTable(table); derr != nil && rerr == nil {
				rerr = derr
			}
			if rerr != nil && !errors.Is(rerr, ErrCanceled) {
				return nil, rerr
			}
			if rp != nil && rp.Best != nil {
				p.ProjectState(rp.Best, res.State)
				res.Cost += rp.BestCost
				res.Flips += rp.Flips
				res.InDBComponents++
			}
			if rerr != nil {
				return finish(rerr)
			}
		}
		return finish(nil)
	}
}

// trueAtoms maps the best state back to ground atoms inferred true.
func (e *Engine) trueAtoms(state []bool) []mln.GroundAtom {
	if state == nil {
		return nil
	}
	var out []mln.GroundAtom
	m := e.grounded.MRF
	for a := 1; a <= m.NumAtoms && a < len(state); a++ {
		if state[a] && m.Atoms != nil {
			out = append(out, m.Atoms[a])
		}
	}
	return out
}

// MarginalResult reports per-atom marginal probabilities.
type MarginalResult struct {
	// Probs[i] pairs a query atom with its estimated Pr[atom = true].
	Probs []AtomProb
}

// AtomProb is one atom's marginal.
type AtomProb struct {
	Atom mln.GroundAtom
	P    float64
}

// InferMarginal runs one marginal-inference query with MC-SAT (Appendix
// A.5), using opts.Samples sampling rounds. Like InferMAP it is safe for
// concurrent use over one grounded Engine, and a canceled context returns
// the marginals estimated so far together with an error matching
// ErrCanceled.
func (e *Engine) InferMarginal(ctx context.Context, opts InferOptions) (*MarginalResult, error) {
	opts = opts.withDefaults()
	if err := e.ensureGround(ctx); err != nil {
		return nil, err
	}
	m := e.grounded.MRF
	mo := search.MCSATOptions{
		Samples: opts.Samples,
		BurnIn:  opts.Samples / 10,
		Seed:    opts.Seed,
	}
	// The distribution factorizes over connected components, so sample
	// each independently (and in parallel) — the marginal-inference
	// counterpart of component-aware MAP search. With a memory budget that
	// splits components, the partitioned Gauss-Seidel MC-SAT path samples
	// partitions color class by color class instead. Partitioning is only
	// consulted when a budget is set: with beta=0 Algorithm 3 yields the
	// connected components (never a cut), so the component path below is
	// the same factorization without duplicating the MRF's clauses.
	var probs []float64
	var err error
	if e.partitionBeta() > 0 && opts.Mode == Auto && e.partitioning().NumCut() > 0 {
		probs, err = search.GaussMCSAT(ctx, e.partitioning(), mo, opts.Parallelism)
	} else if comps := e.components(); len(comps) > 1 && opts.Mode == Auto {
		probs, err = search.MCSATComponents(ctx, m, comps, mo, opts.Parallelism)
	} else {
		probs, err = search.MCSAT(ctx, m, mo)
	}
	if err != nil && !errors.Is(err, ErrCanceled) {
		return nil, err
	}
	out := &MarginalResult{}
	if probs != nil {
		for a := 1; a <= m.NumAtoms; a++ {
			out.Probs = append(out.Probs, AtomProb{Atom: m.Atoms[a], P: probs[a]})
		}
	}
	return out, err
}

// FormatAtom renders a ground atom with the engine's symbol table.
func (e *Engine) FormatAtom(a mln.GroundAtom) string { return a.Format(e.prog.Syms) }

// Stats exposes grounding statistics after Ground.
func (e *Engine) Stats() (grounding.Stats, error) {
	if e.grounded == nil {
		return grounding.Stats{}, fmt.Errorf("tuffy: not grounded yet")
	}
	return e.grounded.Stats, nil
}

// MRFStats exposes the grounded network's size accounting.
func (e *Engine) MRFStats() (mrf.Stats, error) {
	if e.grounded == nil {
		return mrf.Stats{}, fmt.Errorf("tuffy: not grounded yet")
	}
	return e.grounded.MRF.ComputeStats(), nil
}

// OptimalIsInfeasible reports whether grounding already proved the hard
// constraints unsatisfiable (a hard clause violated by evidence).
func (e *Engine) OptimalIsInfeasible() bool {
	return e.grounded != nil && math.IsInf(e.grounded.MRF.FixedCost, 1)
}
