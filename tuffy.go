// Package tuffy is a from-scratch Go implementation of Tuffy (Niu, Ré,
// Doan, Shavlik; VLDB 2011): a Markov Logic Network inference engine that
// grounds MLNs bottom-up inside an embedded relational engine and searches
// in memory, with component detection, MRF partitioning, batch loading,
// parallel component search, Gauss-Seidel partition-aware search and MC-SAT
// marginal inference.
//
// The API splits the pipeline the way the paper does: an Engine owns the
// expensive phase (parsing, evidence load, bottom-up grounding in the
// RDBMS, partitioning); each inference is a per-call query with its own
// options, safe to issue from many goroutines at once over the same
// grounded network.
//
// Quick start:
//
//	prog, _ := tuffy.LoadProgramString(src)
//	ev, _ := tuffy.LoadEvidenceString(prog, evidence)
//	eng, _ := tuffy.Open(prog, ev, tuffy.EngineConfig{})
//	if err := eng.Ground(ctx); err != nil { ... }
//	res, _ := eng.InferMAP(ctx, tuffy.InferOptions{Seed: 1})
//	for _, atom := range res.TrueAtoms { fmt.Println(eng.FormatAtom(atom)) }
//
// Epochs and live evidence: the grounded state is organized as immutable
// epoch snapshots. Ground publishes epoch 0; UpdateEvidence applies an
// mln.Delta (insertions, truth flips, retractions over the existing
// constants), re-runs only the clause grounding queries whose predicates
// the delta touched, repairs the partitioning and component list for the
// touched connected components only, and publishes the result as the next
// epoch with an RCU-style pointer swap. Queries in flight finish
// bit-identically on the epoch they started on; new queries see the new
// epoch. A failed or canceled update rolls the evidence and predicate
// tables back and keeps serving the previous epoch, so the same delta can
// simply be retried. See UpdateEvidence for a worked example.
//
// Concurrent serving: after Ground, any number of goroutines may call
// InferMAP / InferMarginal concurrently with distinct InferOptions; each
// call owns its RNG, tracker and helper tables (collision-free names), and
// every result is bit-identical to the same call run alone. Cancellation:
// every method takes a context; a canceled search returns ErrCanceled
// together with the best result found so far.
//
// For production traffic, Serve wraps one or more grounded Engines in an
// admission-controlled scheduler: a bounded priority queue, per-query
// budget caps with typed rejections, wall-clock deadlines, an epoch-keyed
// result cache whose stale entries are invalidated on evidence updates, and
// metrics. cmd/tuffyd exposes the same layer over HTTP, including POST
// /evidence for live updates.
package tuffy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/plan"
	"tuffy/internal/grounding"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// GrounderKind selects the grounding strategy.
type GrounderKind int

const (
	// BottomUp compiles clauses to SQL over the embedded RDBMS (the
	// paper's contribution, Section 3.1). The default.
	BottomUp GrounderKind = iota
	// TopDown is the Alchemy-style nested-loop baseline.
	TopDown
)

// SearchMode selects where search runs. It is a per-query choice: one
// grounded Engine can serve all three modes.
type SearchMode int

const (
	// Auto uses partitioned in-memory search, falling back to in-database
	// search when a partition exceeds the memory budget.
	Auto SearchMode = iota
	// InMemoryMonolithic is Tuffy-p: one in-memory WalkSAT on the whole
	// MRF (no partitioning).
	InMemoryMonolithic
	// InDatabase is Tuffy-mm: WalkSAT over the RDBMS clause table.
	InDatabase
)

// ErrCanceled is matched (via errors.Is) by the error inference methods
// return when their context is canceled or times out. The accompanying
// result is still valid: it holds the best answer found before the stop.
var ErrCanceled = search.ErrCanceled

// EngineConfig fixes the one-time phase of an Engine: grounding strategy
// and partitioning budget. Everything per-query lives in InferOptions.
// The zero value is the paper's default Tuffy: bottom-up grounding,
// component partitioning, single-threaded grounding.
type EngineConfig struct {
	// Grounder selects the grounding strategy: BottomUp (the paper's
	// SQL-per-clause grounder, the default) or TopDown (the Alchemy-style
	// nested-loop grounder kept for the Table 2 comparison).
	Grounder GrounderKind

	// UseClosure applies the lazy-inference active closure (Appendix A.3)
	// after evidence pruning, dropping clauses outside the closure.
	UseClosure bool

	// MemoryBudgetBytes controls partitioning: 0 keeps whole connected
	// components (Section 3.3); a positive budget further splits components
	// so each partition's search footprint fits (Section 3.4), searched
	// with Gauss-Seidel when clauses are cut.
	MemoryBudgetBytes int64

	// GroundWorkers is the number of concurrent grounding workers for the
	// bottom-up grounder (default 1). The scheduler fans out clause×range
	// tasks: a clause whose optimizer-estimated cost dominates the workload
	// is split into GroundWorkers hash ranges of a join variable, so even a
	// single heavy clause parallelizes. Results are bit-identical for every
	// worker count; see grounding.Options.Workers.
	GroundWorkers int

	// GroundClauseLevelOnly restricts the parallel grounder to whole-clause
	// tasks (the lesion for the hash-range planner): speedup then caps at
	// the heaviest clause's query. Off by default; see
	// grounding.Options.ClauseLevelOnly.
	GroundClauseLevelOnly bool

	// MemoEntries bounds the component-granular result memo shared by every
	// MAP query (0 = default 8192, negative = disabled). The memo keys
	// per-component search outcomes by the component's content, so entries
	// for components an evidence update did not touch survive the epoch
	// swap and are served as bit-identical hits.
	MemoEntries int

	// DB overrides the embedded engine configuration (buffer pool size,
	// optimizer lesion knobs, disk latency injection).
	DB db.Config

	// DataDir enables durable storage: the embedded database runs over
	// page files in DataDir/pages behind a CRC-framed write-ahead log, the
	// grounded state is snapshotted after Ground and at checkpoints, and
	// every committed UpdateEvidence is fsynced to the WAL before its epoch
	// is published. Reopening the same DataDir (with the same program, base
	// evidence and config) warm-starts the engine serving-ready at the
	// exact pre-crash epoch, bit-identical to a never-crashed instance.
	// Empty (the default) keeps everything in memory. See persist.go.
	DataDir string

	// CheckpointEveryUpdates is the automatic checkpoint cadence when
	// DataDir is set: after this many committed evidence updates the
	// grounded state is re-snapshotted and the WAL truncated (0 = default
	// 16, negative = only explicit Checkpoint calls and Close). Checkpoints
	// bound recovery replay; between them the WAL carries the deltas.
	CheckpointEveryUpdates int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.GroundWorkers == 0 {
		c.GroundWorkers = 1
	}
	if c.CheckpointEveryUpdates == 0 {
		c.CheckpointEveryUpdates = 16
	}
	return c
}

// InferOptions are the per-query knobs of one InferMAP / InferMarginal
// call. The zero value runs the paper's defaults. Distinct concurrent
// queries may use any mix of options; none of them mutates Engine state.
type InferOptions struct {
	// Mode selects where this query's search runs (Auto by default).
	Mode SearchMode

	// Seed drives the query's deterministic RNG streams.
	Seed int64
	// MaxFlips is the total WalkSAT flip budget (default 1e6).
	MaxFlips int64
	// MaxTries restarts WalkSAT with fresh random states (default 1).
	MaxTries int

	// GaussSeidelRounds is T in the partition-aware scheme (default 3).
	GaussSeidelRounds int
	// Parallelism is the number of search workers for this query (default
	// 1, matching the paper's single-thread experiments). It drives
	// component-aware search, the partitions within one color class of a
	// Gauss-Seidel round, and per-component/partitioned MC-SAT; results
	// are identical for every value.
	Parallelism int

	// Samples is the number of MC-SAT samples for InferMarginal (default
	// 200); ignored by InferMAP.
	Samples int

	// Tracker receives this query's best-cost-over-time samples; may be
	// nil. Each query should use its own Tracker.
	Tracker *search.Tracker
}

func (o InferOptions) withDefaults() InferOptions {
	if o.MaxFlips == 0 {
		o.MaxFlips = 1_000_000
	}
	// The search layer defaults 0 tries to 1; doing it here too keeps the
	// canonical form the serving layer's cache keys rely on (0 and 1 are
	// the same query).
	if o.MaxTries == 0 {
		o.MaxTries = 1
	}
	if o.GaussSeidelRounds == 0 {
		o.GaussSeidelRounds = 3
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	if o.Samples == 0 {
		o.Samples = 200
	}
	return o
}

// epoch is one immutable snapshot of the grounded state: the grounding
// result plus every structure derived from it (partitioning, component
// list, the in-database clause table), each computed lazily at most once
// per epoch — or spliced in pre-repaired by UpdateEvidence. Queries pin an
// epoch with a reference count for their whole run, so an epoch swap never
// changes what an in-flight query sees; when the last query on a retired
// epoch finishes, its clause table is dropped and its pages return to the
// embedded engine's free lists.
type epoch struct {
	gen uint64
	res *grounding.Result
	db  *db.DB

	// mu guards the lazily-derived structures. UpdateEvidence pre-seeds
	// them on the next epoch when this epoch has already computed its own
	// (repair is cheaper than recompute); otherwise the first query to need
	// one computes it, exactly as before.
	mu    sync.Mutex
	part  *partition.Partitioning
	comps []*mrf.Component // Components(true); marginal factorization

	clauseOnce  sync.Once
	clauseErr   error
	clauseTable string

	// refs counts pinned users: 1 for being the current epoch, plus one per
	// in-flight query. retire runs when it reaches zero.
	refs    atomic.Int64
	retired sync.Once
}

// release drops one pin; the last release tears the epoch's clause table
// down.
func (ep *epoch) release() {
	if ep.refs.Add(-1) == 0 {
		ep.retired.Do(func() {
			if ep.clauseTable != "" && ep.clauseErr == nil {
				_ = ep.db.DropTable(ep.clauseTable)
			}
		})
	}
}

// partitioning lazily computes (once per epoch) the Algorithm 3
// partitioning every Auto-mode query on this epoch shares. Algorithm 3 is
// deterministic and the searches never mutate the Partitioning, so sharing
// preserves bit-identical results.
func (ep *epoch) partitioning(beta int) *partition.Partitioning {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.part == nil {
		ep.part = partition.Algorithm3(ep.res.MRF, beta)
	}
	return ep.part
}

// components lazily computes (once per epoch) the connected components
// marginal inference factorizes over.
func (ep *epoch) components() []*mrf.Component {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.comps == nil {
		ep.comps = ep.res.MRF.Components(true)
	}
	return ep.comps
}

// builtDerived returns the derived structures this epoch has materialized
// so far (nil for the ones it has not).
func (ep *epoch) builtDerived() (*partition.Partitioning, []*mrf.Component) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.part, ep.comps
}

// ensureClauseTable stores the epoch's MRF into its read-only clause table
// for InDatabase queries (once; concurrent queries share it).
func (ep *epoch) ensureClauseTable() (string, error) {
	ep.clauseOnce.Do(func() {
		ep.clauseTable = fmt.Sprintf("mrf_clauses_e%d", ep.gen)
		ep.clauseErr = mrf.Store(ep.res.MRF, ep.db, ep.clauseTable)
	})
	return ep.clauseTable, ep.clauseErr
}

// Engine owns one program, its evidence and the grounded network as a
// sequence of immutable epoch snapshots. Ground publishes the first epoch;
// UpdateEvidence publishes subsequent ones. InferMAP / InferMarginal may be
// called from any number of goroutines concurrently, including while an
// update is in flight: each query runs entirely on the epoch that was
// current when it started.
type Engine struct {
	cfg  EngineConfig
	prog *mln.Program
	ev   *mln.Evidence
	db   *db.DB

	// groundMu serializes Ground and UpdateEvidence (single-writer). The
	// predicate tables and the incremental grounding cache are only touched
	// under it; queries never need it once an epoch exists.
	groundMu   sync.Mutex
	tables     *grounding.TableSet
	inc        *grounding.Incremental // BottomUp only; drives UpdateEvidence
	groundTime time.Duration
	broken     error // rollback failure latch: state inconsistent for updates

	// cur is the published epoch (nil before the first Ground succeeds);
	// swapped RCU-style by UpdateEvidence.
	cur atomic.Pointer[epoch]

	// memo is the cross-epoch component-granular result cache (nil when
	// disabled). Content-keyed, so no epoch swap ever invalidates a still-
	// correct entry.
	memo *search.ComponentMemo

	updating       atomic.Bool
	updatesApplied atomic.Uint64

	// dur is the durable-storage layer (nil without EngineConfig.DataDir);
	// its mutable state is guarded by groundMu. See persist.go.
	dur *durability

	// idProgFP/idEvFP/idCfgFP are the identity fingerprints the distributed
	// tier's handshake exchanges, captured at Open over the base evidence
	// (updates mutate e.ev in place, so they cannot be derived later). See
	// shard.go.
	idProgFP, idEvFP, idCfgFP uint64
}

// Open creates an Engine over a parsed program and its evidence. Call
// Ground next (or InferMAP / InferMarginal, which ground on demand).
//
// With EngineConfig.DataDir set, Open also opens (or creates) the durable
// store: if the directory holds a snapshot written under the same program,
// base evidence and config, the engine warm-starts — it comes back
// serving-ready at the exact epoch the previous process last committed,
// replaying any evidence deltas the write-ahead log holds past the
// snapshot, without re-running grounding. A mismatched snapshot (different
// program or base evidence) is an error, never a silent cold start. Call
// Close when done to checkpoint and release the files.
func Open(prog *mln.Program, ev *mln.Evidence, cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, prog: prog, ev: ev}
	if cfg.MemoEntries >= 0 {
		e.memo = search.NewComponentMemo(cfg.MemoEntries)
	}
	e.idProgFP = fingerprintProgram(prog, cfg)
	if ev != nil {
		e.idEvFP = fingerprintEvidence(prog, ev)
	}
	e.idCfgFP = fingerprintShardConfig(cfg)
	if cfg.DataDir == "" {
		e.db = db.Open(cfg.DB)
		return e, nil
	}
	if err := e.openDurable(); err != nil {
		return nil, err
	}
	return e, nil
}

// LoadProgram parses an MLN program.
func LoadProgram(r io.Reader) (*mln.Program, error) { return mln.ParseProgram(r) }

// LoadProgramString parses an MLN program from a string.
func LoadProgramString(s string) (*mln.Program, error) { return mln.ParseProgramString(s) }

// LoadEvidence parses evidence for a program.
func LoadEvidence(prog *mln.Program, r io.Reader) (*mln.Evidence, error) {
	return mln.ParseEvidence(prog, r)
}

// LoadEvidenceString parses evidence from a string.
func LoadEvidenceString(prog *mln.Program, s string) (*mln.Evidence, error) {
	return mln.ParseEvidenceString(prog, s)
}

// SetPlanOptions adjusts the embedded engine's optimizer knobs (the Table 6
// lesion study). Call it before Ground.
func (e *Engine) SetPlanOptions(o plan.Options) { e.db.SetPlanOptions(o) }

// DB exposes the embedded relational engine (for experiments and stats).
func (e *Engine) DB() *db.DB { return e.db }

// Prog returns the program the engine serves.
func (e *Engine) Prog() *mln.Program { return e.prog }

// Ev returns the evidence the engine was opened with.
func (e *Engine) Ev() *mln.Evidence { return e.ev }

// Tables returns the predicate tables built by Ground (nil before). Safe
// to call concurrently with an in-flight Ground.
func (e *Engine) Tables() *grounding.TableSet {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	return e.tables
}

// Grounded returns the current epoch's grounding result (nil before
// Ground). Safe to call concurrently with in-flight grounds and updates.
func (e *Engine) Grounded() *grounding.Result {
	if ep := e.cur.Load(); ep != nil {
		return ep.res
	}
	return nil
}

// GroundTime reports how long the initial grounding phase took.
func (e *Engine) GroundTime() time.Duration {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	return e.groundTime
}

// Generation returns the current epoch number: 0 after Ground, incremented
// by every UpdateEvidence that changed the grounded network.
func (e *Engine) Generation() uint64 {
	if ep := e.cur.Load(); ep != nil {
		return ep.gen
	}
	return 0
}

// Updating reports whether an UpdateEvidence is re-grounding right now.
// Queries remain fully served (on the current epoch) while it is true.
func (e *Engine) Updating() bool { return e.updating.Load() }

// UpdatesApplied counts successful UpdateEvidence calls (including logical
// no-ops that did not publish a new epoch).
func (e *Engine) UpdatesApplied() uint64 { return e.updatesApplied.Load() }

// MemoStats snapshots the component-granular result memo (zero value when
// the memo is disabled).
func (e *Engine) MemoStats() search.MemoStats {
	if e.memo == nil {
		return search.MemoStats{}
	}
	return e.memo.Stats()
}

// Ground builds the predicate tables, runs the configured grounder and
// publishes epoch 0. Concurrent and repeated calls share one successful
// grounding run. A failed (or canceled) Ground tears its half-built
// predicate tables down and leaves the Engine un-grounded, so it can be
// re-Grounded in place — a canceled Ground followed by a retry behaves
// like a first Ground.
func (e *Engine) Ground(ctx context.Context) error {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	if e.cur.Load() != nil {
		return nil
	}
	return e.ground(ctx)
}

func (e *Engine) ground(ctx context.Context) error {
	// Grounding is retryable in place, so a dead context must not pay for a
	// full table build it would immediately tear down — retries under a
	// too-short deadline would repeat that cycle every attempt.
	if ctx.Err() != nil {
		return search.Canceled(ctx)
	}
	start := time.Now()
	ts, err := grounding.BuildTables(e.db, e.prog, e.ev)
	if err != nil {
		return err
	}
	e.tables = ts
	opts := grounding.Options{
		UseClosure:      e.cfg.UseClosure,
		Workers:         e.cfg.GroundWorkers,
		ClauseLevelOnly: e.cfg.GroundClauseLevelOnly,
	}
	var res *grounding.Result
	switch e.cfg.Grounder {
	case TopDown:
		res, err = grounding.GroundTopDown(ctx, ts, opts)
	default:
		// The bottom-up grounder runs through the incremental wrapper,
		// which retains each clause's raw groundings — the cache that lets
		// UpdateEvidence re-run only the touched clauses later.
		e.inc, res, err = grounding.NewIncremental(ctx, ts, opts)
	}
	if err != nil {
		// Tear the predicate tables down so a retry rebuilds them from a
		// clean catalog (their pages return to the engine's free lists).
		ts.Drop()
		e.tables = nil
		e.inc = nil
		// Wrap only genuine cancellations (the grounders return the
		// context's cause when they stop); a real grounding failure that
		// merely coincides with an expired deadline keeps its own error.
		if ctx.Err() != nil && errors.Is(err, context.Cause(ctx)) {
			return search.Canceled(ctx)
		}
		return err
	}
	e.groundTime = time.Since(start)
	if e.dur != nil && e.inc != nil {
		// The durability baseline: updates fsync only their deltas, so a
		// snapshot of the grounded state must exist before any update is
		// acknowledged. Writing it before the epoch is published keeps
		// Ground's failure contract — on error the engine is un-grounded
		// and retryable, and a crash mid-checkpoint reopens cold. The epoch
		// is not published yet, so the freshly assembled network is handed
		// to the checkpoint directly.
		if err := e.checkpointWith(0, false, false, res); err != nil {
			ts.Drop()
			e.tables = nil
			e.inc = nil
			return fmt.Errorf("tuffy: durable checkpoint after grounding: %w", err)
		}
	}
	ep := &epoch{gen: 0, res: res, db: e.db}
	ep.refs.Store(1)
	e.cur.Store(ep)
	return nil
}

// acquire pins the current epoch for one query, grounding on demand if no
// epoch exists yet. The release closure must be called when the query is
// done. The load-increment-recheck loop closes the race with a concurrent
// epoch swap: if the epoch stopped being current between the load and the
// pin, the pin may have landed on an already-retired snapshot, so it is
// dropped and the new epoch is pinned instead.
func (e *Engine) acquire(ctx context.Context) (*epoch, func(), error) {
	for {
		ep := e.cur.Load()
		if ep == nil {
			if err := e.Ground(ctx); err != nil {
				return nil, nil, err
			}
			continue
		}
		ep.refs.Add(1)
		if e.cur.Load() == ep {
			return ep, ep.release, nil
		}
		ep.release()
	}
}

// partitionBeta converts the memory budget to Algorithm 3's size-unit
// bound (SearchBytes ≈ 20 bytes per size unit, i.e. per atom or literal);
// 0 means no budget, which keeps whole connected components.
func (e *Engine) partitionBeta() int {
	if e.cfg.MemoryBudgetBytes <= 0 {
		return 0
	}
	return int(e.cfg.MemoryBudgetBytes / 20)
}

// MAPResult is the outcome of MAP inference.
type MAPResult struct {
	// Cost of the best world found (Eq. 1; +Inf if hard clauses could not
	// all be satisfied).
	Cost float64
	// TrueAtoms are the query atoms inferred true (excluding evidence).
	TrueAtoms []mln.GroundAtom
	// State is the raw best assignment over the MRF atoms.
	State []bool
	// Flips performed during search.
	Flips int64
	// GroundTime and SearchTime break down the run.
	GroundTime time.Duration
	SearchTime time.Duration
	// Partitions and CutClauses describe the partitioning used (0/0 when
	// monolithic).
	Partitions int
	CutClauses int
	// InDBComponents counts components that exceeded the memory budget and
	// were searched inside the RDBMS (the hybrid fallback of Section 3.2).
	InDBComponents int
	// Epoch is the engine epoch this answer was computed on. An in-flight
	// query keeps its epoch across a concurrent evidence update, so Epoch
	// may lag Engine.Generation by the time the caller reads it.
	Epoch uint64
}

// InferMAP runs one MAP query: grounding (if not already done), then
// search per the per-call options. Safe for concurrent use: any number of
// goroutines may query one grounded Engine at once, and each result is
// bit-identical to the same query run alone.
//
// If ctx is canceled mid-search, InferMAP returns the best result found so
// far together with an error matching ErrCanceled.
func (e *Engine) InferMAP(ctx context.Context, opts InferOptions) (*MAPResult, error) {
	opts = opts.withDefaults()
	ep, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	m := ep.res.MRF
	res := &MAPResult{GroundTime: e.GroundTime(), Epoch: ep.gen}
	searchStart := time.Now()

	base := search.Options{
		MaxFlips: opts.MaxFlips,
		MaxTries: opts.MaxTries,
		Seed:     opts.Seed,
		Tracker:  opts.Tracker,
	}

	finish := func(err error) (*MAPResult, error) {
		res.SearchTime = time.Since(searchStart)
		res.TrueAtoms = trueAtoms(m, res.State)
		return res, err
	}

	switch opts.Mode {
	case InDatabase:
		table, err := ep.ensureClauseTable()
		if err != nil {
			return nil, err
		}
		r, err := search.RDBMSWalkSAT(ctx, e.db, table, m.NumAtoms, base)
		if err != nil && !errors.Is(err, ErrCanceled) {
			return nil, err
		}
		if r == nil { // canceled before the search state was built
			res.Cost = math.Inf(1)
			return finish(err)
		}
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips
		return finish(err)

	case InMemoryMonolithic:
		r, err := search.Monolithic(ctx, m, base)
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips
		return finish(err)

	default: // Auto: partitioned
		pt := ep.partitioning(e.partitionBeta())
		res.Partitions = len(pt.Parts)
		res.CutClauses = pt.NumCut()
		if pt.NumCut() > 0 {
			r, err := search.GaussSeidel(ctx, pt, search.GaussSeidelOptions{
				Base:        base,
				Rounds:      opts.GaussSeidelRounds,
				Parallelism: opts.Parallelism,
			})
			if err != nil && !errors.Is(err, ErrCanceled) {
				return nil, err
			}
			res.Cost = r.BestCost
			res.State = r.Best
			res.Flips = r.Flips
			return finish(err)
		}
		// Hybrid fallback (Section 3.2): components whose search footprint
		// exceeds the memory budget are searched inside the RDBMS
		// (Tuffy-mm); the rest run in memory.
		var inMem []*mrf.Component
		var oversized []*partition.Part
		for _, p := range pt.Parts {
			if e.cfg.MemoryBudgetBytes > 0 && p.Bytes() > e.cfg.MemoryBudgetBytes {
				oversized = append(oversized, p)
				continue
			}
			inMem = append(inMem, &mrf.Component{MRF: p.Local, GlobalAtom: p.GlobalAtom})
		}
		r, err := search.ComponentAware(ctx, m, inMem, search.ComponentOptions{
			Base:        base,
			Parallelism: opts.Parallelism,
			Memo:        e.memo,
		})
		res.Cost = r.BestCost
		res.State = r.Best
		res.Flips = r.Flips
		if err != nil {
			return finish(err)
		}
		// In-DB flips are orders of magnitude slower, so oversized
		// components get 1% of the budget — clamped to at least one flip so
		// they still search when the total budget is tiny.
		inDBFlips := search.ClampFlips(base.MaxFlips/100, 0)
		for i, p := range oversized {
			if ctx.Err() != nil {
				return finish(search.Canceled(ctx))
			}
			// Per-query table name: concurrent queries must not collide in
			// the catalog; dropping the table afterwards returns its pages
			// to the engine's free list.
			table := mrf.QueryTableName("mrf_part")
			if err := mrf.Store(p.Local, e.db, table); err != nil {
				return nil, err
			}
			rp, rerr := search.RDBMSWalkSAT(ctx, e.db, table, p.Local.NumAtoms, search.Options{
				MaxFlips: inDBFlips,
				Seed:     base.Seed + int64(i),
			})
			if derr := e.db.DropTable(table); derr != nil && rerr == nil {
				rerr = derr
			}
			if rerr != nil && !errors.Is(rerr, ErrCanceled) {
				return nil, rerr
			}
			if rp != nil && rp.Best != nil {
				p.ProjectState(rp.Best, res.State)
				res.Cost += rp.BestCost
				res.Flips += rp.Flips
				res.InDBComponents++
			}
			if rerr != nil {
				return finish(rerr)
			}
		}
		return finish(nil)
	}
}

// trueAtoms maps the best state back to ground atoms inferred true.
func trueAtoms(m *mrf.MRF, state []bool) []mln.GroundAtom {
	if state == nil {
		return nil
	}
	var out []mln.GroundAtom
	for a := 1; a <= m.NumAtoms && a < len(state); a++ {
		if state[a] && m.Atoms != nil {
			out = append(out, m.Atoms[a])
		}
	}
	return out
}

// MarginalResult reports per-atom marginal probabilities.
type MarginalResult struct {
	// Probs[i] pairs a query atom with its estimated Pr[atom = true].
	Probs []AtomProb
	// Epoch is the engine epoch this answer was computed on (see
	// MAPResult.Epoch).
	Epoch uint64
}

// AtomProb is one atom's marginal.
type AtomProb struct {
	Atom mln.GroundAtom
	P    float64
}

// InferMarginal runs one marginal-inference query with MC-SAT (Appendix
// A.5), using opts.Samples sampling rounds. Like InferMAP it is safe for
// concurrent use over one grounded Engine, and a canceled context returns
// the marginals estimated so far together with an error matching
// ErrCanceled.
func (e *Engine) InferMarginal(ctx context.Context, opts InferOptions) (*MarginalResult, error) {
	opts = opts.withDefaults()
	ep, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	m := ep.res.MRF
	mo := search.MCSATOptions{
		Samples: opts.Samples,
		BurnIn:  opts.Samples / 10,
		Seed:    opts.Seed,
	}
	// The distribution factorizes over connected components, so sample
	// each independently (and in parallel) — the marginal-inference
	// counterpart of component-aware MAP search. With a memory budget that
	// splits components, the partitioned Gauss-Seidel MC-SAT path samples
	// partitions color class by color class instead. Partitioning is only
	// consulted when a budget is set: with beta=0 Algorithm 3 yields the
	// connected components (never a cut), so the component path below is
	// the same factorization without duplicating the MRF's clauses.
	var probs []float64
	if e.partitionBeta() > 0 && opts.Mode == Auto && ep.partitioning(e.partitionBeta()).NumCut() > 0 {
		probs, err = search.GaussMCSAT(ctx, ep.partitioning(e.partitionBeta()), mo, opts.Parallelism)
	} else if comps := ep.components(); len(comps) > 1 && opts.Mode == Auto {
		probs, err = search.MCSATComponents(ctx, m, comps, mo, opts.Parallelism)
	} else {
		probs, err = search.MCSAT(ctx, m, mo)
	}
	if err != nil && !errors.Is(err, ErrCanceled) {
		return nil, err
	}
	out := &MarginalResult{Epoch: ep.gen}
	if probs != nil {
		for a := 1; a <= m.NumAtoms; a++ {
			out.Probs = append(out.Probs, AtomProb{Atom: m.Atoms[a], P: probs[a]})
		}
	}
	return out, err
}

// FormatAtom renders a ground atom with the engine's symbol table.
func (e *Engine) FormatAtom(a mln.GroundAtom) string { return a.Format(e.prog.Syms) }

// Stats exposes grounding statistics for the current epoch after Ground.
func (e *Engine) Stats() (grounding.Stats, error) {
	res := e.Grounded()
	if res == nil {
		return grounding.Stats{}, fmt.Errorf("tuffy: not grounded yet")
	}
	return res.Stats, nil
}

// MRFStats exposes the current epoch's grounded-network size accounting.
func (e *Engine) MRFStats() (mrf.Stats, error) {
	res := e.Grounded()
	if res == nil {
		return mrf.Stats{}, fmt.Errorf("tuffy: not grounded yet")
	}
	return res.MRF.ComputeStats(), nil
}

// OptimalIsInfeasible reports whether grounding already proved the hard
// constraints unsatisfiable (a hard clause violated by evidence).
func (e *Engine) OptimalIsInfeasible() bool {
	res := e.Grounded()
	return res != nil && math.IsInf(res.MRF.FixedCost, 1)
}
