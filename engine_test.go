package tuffy

// Tests of the Engine/Query API: ground once, serve many concurrent
// inferences, cancel gracefully, reclaim per-query helper storage.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/mln"
)

func figure1Engine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	prog, err := LoadProgramString(mln.Figure1Program)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := LoadEvidenceString(prog, mln.Figure1Evidence)
	if err != nil {
		t.Fatal(err)
	}
	return mustOpen(t, prog, ev, cfg)
}

func mustOpen(t *testing.T, prog *mln.Program, ev *mln.Evidence, cfg EngineConfig) *Engine {
	t.Helper()
	eng, err := Open(prog, ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sameStates(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// One grounded Engine must serve many simultaneous queries, each
// bit-identical to the same query run alone. The mix covers all three MAP
// modes plus marginal inference, with distinct seeds. Runs under -race in
// CI.
func TestConcurrentQueriesBitIdenticalToSequential(t *testing.T) {
	ctx := context.Background()
	eng := figure1Engine(t, EngineConfig{})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}

	mapQueries := []InferOptions{
		{Mode: Auto, MaxFlips: 20_000, Seed: 1},
		{Mode: Auto, MaxFlips: 20_000, Seed: 2, Parallelism: 4},
		{Mode: InMemoryMonolithic, MaxFlips: 20_000, Seed: 3},
		// Two simultaneous in-DB queries share the read-only clause table
		// (concurrent cid-index build/drop, disjoint helper tables).
		{Mode: InDatabase, MaxFlips: 150, Seed: 4},
		{Mode: InDatabase, MaxFlips: 150, Seed: 5},
	}
	margQuery := InferOptions{Samples: 150, Seed: 5}

	// Sequential reference runs on the same engine.
	wantMAP := make([]*MAPResult, len(mapQueries))
	for i, q := range mapQueries {
		r, err := eng.InferMAP(ctx, q)
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
		wantMAP[i] = r
	}
	wantMarg, err := eng.InferMarginal(ctx, margQuery)
	if err != nil {
		t.Fatal(err)
	}

	// The same queries, all at once.
	var wg sync.WaitGroup
	gotMAP := make([]*MAPResult, len(mapQueries))
	errs := make([]error, len(mapQueries)+1)
	var gotMarg *MarginalResult
	for i, q := range mapQueries {
		wg.Add(1)
		go func(i int, q InferOptions) {
			defer wg.Done()
			gotMAP[i], errs[i] = eng.InferMAP(ctx, q)
		}(i, q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		gotMarg, errs[len(mapQueries)] = eng.InferMarginal(ctx, margQuery)
	}()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
	for i := range mapQueries {
		if gotMAP[i].Cost != wantMAP[i].Cost {
			t.Fatalf("query %d: concurrent cost %v != sequential %v", i, gotMAP[i].Cost, wantMAP[i].Cost)
		}
		if gotMAP[i].Flips != wantMAP[i].Flips {
			t.Fatalf("query %d: concurrent flips %d != sequential %d", i, gotMAP[i].Flips, wantMAP[i].Flips)
		}
		if !sameStates(gotMAP[i].State, wantMAP[i].State) {
			t.Fatalf("query %d: concurrent best state differs from sequential", i)
		}
	}
	if len(gotMarg.Probs) != len(wantMarg.Probs) {
		t.Fatalf("marginal lengths differ: %d vs %d", len(gotMarg.Probs), len(wantMarg.Probs))
	}
	for i := range wantMarg.Probs {
		if gotMarg.Probs[i].P != wantMarg.Probs[i].P {
			t.Fatalf("marginal %d: concurrent %v != sequential %v", i, gotMarg.Probs[i].P, wantMarg.Probs[i].P)
		}
	}
}

// Concurrent Gauss-Seidel queries (budget-split partitioning with cut
// clauses) over one shared Partitioning must also be bit-identical.
func TestConcurrentGaussSeidelQueries(t *testing.T) {
	ctx := context.Background()
	ds := datagen.ER(datagen.ERConfig{Records: 24, Groups: 6, Seed: 5})
	probe := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{})
	if err := probe.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	ms, _ := probe.MRFStats()

	eng := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{MemoryBudgetBytes: ms.SearchBytes / 8})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}

	queries := []InferOptions{
		{MaxFlips: 10_000, Seed: 11},
		{MaxFlips: 10_000, Seed: 12, Parallelism: 2},
		{MaxFlips: 10_000, Seed: 13},
		{MaxFlips: 10_000, Seed: 14, Parallelism: 4},
	}
	want := make([]*MAPResult, len(queries))
	for i, q := range queries {
		r, err := eng.InferMAP(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.CutClauses == 0 {
			t.Fatal("budget split must cut clauses")
		}
		want[i] = r
	}

	var wg sync.WaitGroup
	got := make([]*MAPResult, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q InferOptions) {
			defer wg.Done()
			got[i], errs[i] = eng.InferMAP(ctx, q)
		}(i, q)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if got[i].Cost != want[i].Cost || got[i].Flips != want[i].Flips || !sameStates(got[i].State, want[i].State) {
			t.Fatalf("query %d: concurrent result differs from sequential", i)
		}
	}
}

// contradictionEngine builds a workload whose violated set never empties,
// so a search runs until its budget or context stops it.
func contradictionEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	prog, err := LoadProgramString(`
thing = {A, B, C, D, E, F, G, H}
p(thing)
1 p(x)
1 !p(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	return mustOpen(t, prog, mln.NewEvidence(prog), cfg)
}

// assertCanceledMAP checks the cancellation contract: typed error, prompt
// return, valid best-so-far state.
func assertCanceledMAP(t *testing.T, res *MAPResult, err error, elapsed time.Duration, numAtoms int) {
	t.Helper()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancel took %v, want < 1s", elapsed)
	}
	if res == nil {
		t.Fatal("canceled query returned no result")
	}
	if res.State == nil || len(res.State) != numAtoms+1 {
		t.Fatalf("canceled query state has %d slots, want %d", len(res.State), numAtoms+1)
	}
}

func TestCancelInMemorySearch(t *testing.T) {
	eng := contradictionEngine(t, EngineConfig{})
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	goroutines := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.InferMAP(ctx, InferOptions{Mode: InMemoryMonolithic, MaxFlips: math.MaxInt64 / 2, Seed: 1})
	assertCanceledMAP(t, res, err, time.Since(start), eng.Grounded().MRF.NumAtoms)
	waitForGoroutines(t, goroutines)
}

func TestCancelGaussSeidelSearch(t *testing.T) {
	ctx := context.Background()
	// Dense ER split under a budget cuts clauses, so the Gauss-Seidel path
	// runs; its soft conflicts keep the violated set non-empty, so the
	// search spins until the context stops it.
	ds := datagen.ER(datagen.ERConfig{Records: 24, Groups: 6, Seed: 5})
	probe := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{})
	if err := probe.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	ms, _ := probe.MRFStats()
	eng := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{MemoryBudgetBytes: ms.SearchBytes / 8})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	goroutines := runtime.NumGoroutine()
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.InferMAP(cctx, InferOptions{MaxFlips: math.MaxInt64 / 4, GaussSeidelRounds: 1 << 20, Seed: 2})
	assertCanceledMAP(t, res, err, time.Since(start), eng.Grounded().MRF.NumAtoms)
	if res.CutClauses == 0 {
		// The split may have produced no cut on this tiny workload; the
		// test then exercised the component path instead, which is covered
		// elsewhere — require the cut so the Gauss-Seidel path is the one
		// canceled.
		t.Fatal("budget did not cut clauses; Gauss-Seidel path not exercised")
	}
	waitForGoroutines(t, goroutines)
}

func TestCancelInDatabaseSearch(t *testing.T) {
	eng := contradictionEngine(t, EngineConfig{})
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Warm query: creates the shared clause table.
	if _, err := eng.InferMAP(context.Background(), InferOptions{Mode: InDatabase, MaxFlips: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	tablesBefore := len(eng.DB().TableNames())
	goroutines := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.InferMAP(ctx, InferOptions{Mode: InDatabase, MaxFlips: math.MaxInt64 / 4, Seed: 3})
	assertCanceledMAP(t, res, err, time.Since(start), eng.Grounded().MRF.NumAtoms)

	if after := len(eng.DB().TableNames()); after != tablesBefore {
		t.Fatalf("catalog grew from %d to %d tables: canceled query leaked helper tables", tablesBefore, after)
	}
	waitForGoroutines(t, goroutines)
}

func TestCancelMarginal(t *testing.T) {
	eng := figure1Engine(t, EngineConfig{})
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.InferMarginal(ctx, InferOptions{Samples: math.MaxInt32 / 2, Seed: 4})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancel took %v", time.Since(start))
	}
	if res == nil {
		t.Fatal("canceled marginal returned no result")
	}
	for _, ap := range res.Probs {
		if ap.P < 0 || ap.P > 1 {
			t.Fatalf("marginal %v out of range", ap.P)
		}
	}
}

// waitForGoroutines gives canceled workers a moment to exit, then asserts
// no goroutines leaked.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), want)
}

// Repeated in-database queries on one Engine must not leak pages: the
// per-query helper tables (inverted index + violated side table) are
// dropped and their storage reused, holding the disk footprint at the
// high-water mark of one query.
func TestRepeatedInDBQueriesPageStable(t *testing.T) {
	disk := storage.NewMemDisk()
	eng := contradictionEngine(t, EngineConfig{DB: db.Config{Disk: disk}})
	ctx := context.Background()
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) {
		if _, err := eng.InferMAP(ctx, InferOptions{Mode: InDatabase, MaxFlips: 50, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	baseline := disk.PageFootprint()
	if baseline == 0 {
		t.Fatal("no pages allocated")
	}
	for i := int64(2); i <= 6; i++ {
		run(i)
		if got := disk.PageFootprint(); got != baseline {
			t.Fatalf("query %d: page footprint %d != baseline %d (helper-table pages leaked)", i, got, baseline)
		}
	}
}

// The hybrid fallback's in-DB budget (MaxFlips/100) must clamp to >= 1:
// with a tiny total budget, oversized components still search (and on
// these unit-clause singletons one flip suffices to reach the optimum).
func TestHybridFallbackFlipBudgetClamp(t *testing.T) {
	prog, err := LoadProgramString(`
thing = {A, B, C}
p(thing)
1 p(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	eng := mustOpen(t, prog, mln.NewEvidence(prog), EngineConfig{
		MemoryBudgetBytes: 41, // below one single-atom component's footprint
	})
	res, err := eng.InferMAP(context.Background(), InferOptions{
		MaxFlips: 50, // 50/100 == 0 before the clamp
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InDBComponents == 0 {
		t.Fatal("expected in-database fallback components")
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %v; the clamped one-flip budget should still satisfy the unit clauses", res.Cost)
	}
	if len(res.TrueAtoms) != 3 {
		t.Fatalf("want all 3 atoms true, got %v", res.TrueAtoms)
	}
}

// A canceled Ground must tear its half-built predicate tables down and
// leave the Engine re-Groundable in place: the retry sees a clean catalog
// and produces the same grounding a fresh Engine would.
func TestGroundCancelThenRetry(t *testing.T) {
	ds := datagen.ER(datagen.ERConfig{Records: 30, Groups: 8, Seed: 3})
	eng := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{})

	// Cancel before grounding starts: the build is skipped (or torn down)
	// and the catalog must end empty either way.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Ground(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled Ground: err = %v, want ErrCanceled", err)
	}
	if n := len(eng.DB().TableNames()); n != 0 {
		t.Fatalf("canceled Ground left %d tables in the catalog: %v", n, eng.DB().TableNames())
	}
	if eng.Tables() != nil || eng.Grounded() != nil {
		t.Fatal("canceled Ground left grounded state on the engine")
	}

	// Retry in place must succeed and match a fresh engine bit for bit.
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatalf("retry Ground: %v", err)
	}
	fresh := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{})
	if err := fresh.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	gs, _ := eng.Stats()
	fs, _ := fresh.Stats()
	if gs.NumClauses != fs.NumClauses || gs.NumUsedAtoms != fs.NumUsedAtoms {
		t.Fatalf("retried grounding differs: %+v vs fresh %+v", gs, fs)
	}
	res, err := eng.InferMAP(context.Background(), InferOptions{MaxFlips: 5_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.InferMAP(context.Background(), InferOptions{MaxFlips: 5_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost || !sameStates(res.State, want.State) {
		t.Fatalf("retried engine answers differ: cost %v vs %v", res.Cost, want.Cost)
	}

	// Repeated cancel/retry cycles must hold the catalog and page
	// footprint at a successful ground's level (no leaked predicate
	// tables or pages across retries).
	disk := storage.NewMemDisk()
	eng2 := mustOpen(t, ds.Prog, ds.Ev, EngineConfig{DB: db.Config{Disk: disk}})
	for i := 0; i < 3; i++ {
		cctx, ccancel := context.WithCancel(context.Background())
		ccancel()
		if err := eng2.Ground(cctx); !errors.Is(err, ErrCanceled) {
			t.Fatalf("cycle %d: err = %v, want ErrCanceled", i, err)
		}
		if n := len(eng2.DB().TableNames()); n != 0 {
			t.Fatalf("cycle %d left %d tables", i, n)
		}
	}
	if err := eng2.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Ground(context.Background()); err != nil {
		t.Fatalf("Ground after success must stay idempotent: %v", err)
	}
}

// The deprecated System shim must keep delegating to the Engine.
func TestSystemShimDelegates(t *testing.T) {
	prog, _ := LoadProgramString(mln.Figure1Program)
	ev, _ := LoadEvidenceString(prog, mln.Figure1Evidence)
	sys := New(prog, ev, Config{MaxFlips: 20_000, Seed: 1})
	res, err := sys.InferMAP()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Grounded == nil || sys.Tables == nil {
		t.Fatal("shim did not mirror ground state")
	}
	eres, err := sys.Engine().InferMAP(context.Background(), InferOptions{MaxFlips: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != eres.Cost || !sameStates(res.State, eres.State) {
		t.Fatalf("shim result diverges from engine: %v vs %v", res.Cost, eres.Cost)
	}
}
