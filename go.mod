module tuffy

go 1.24
