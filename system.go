package tuffy

// This file keeps the pre-Engine fused API compiling: System bundled the
// one-time grounding phase and the per-call search knobs in a single
// struct, which made concurrent queries over one grounded network unsafe.
// It is now a thin shim over Engine; new code should use Open / Ground /
// InferMAP / InferMarginal directly.

import (
	"context"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/plan"
	"tuffy/internal/grounding"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/search"
)

// Config tunes a System: the union of EngineConfig (one-time phase) and
// InferOptions (per-call search knobs), fused the way the old API was.
//
// Deprecated: use EngineConfig for Open and InferOptions per query.
type Config struct {
	Grounder   GrounderKind
	Mode       SearchMode
	UseClosure bool // lazy-inference active closure (Appendix A.3)

	// Partitioning: 0 keeps whole connected components (Section 3.3); a
	// positive MemoryBudgetBytes further splits components so each
	// partition's search footprint fits (Section 3.4), searched with
	// Gauss-Seidel when clauses are cut.
	MemoryBudgetBytes int64
	// GaussSeidelRounds is T in the partition-aware scheme (default 3).
	GaussSeidelRounds int
	// Parallelism is the number of search workers (default 1).
	Parallelism int
	// GroundWorkers is the number of concurrent clause-grounding workers
	// for the bottom-up grounder (default 1).
	GroundWorkers int

	// Search budget.
	MaxFlips int64 // total flips (default 1e6)
	MaxTries int
	Seed     int64

	// Tracker receives best-cost-over-time samples (time-cost plots).
	Tracker *search.Tracker

	// DB overrides the embedded engine configuration.
	DB db.Config
}

// System is one inference instance over a program and its evidence, with
// the search configuration fixed at New.
//
// Deprecated: use Engine, which separates the ground-once state from the
// per-call InferOptions and is safe for concurrent queries.
type System struct {
	eng *Engine
	cfg Config

	Prog *mln.Program
	Ev   *mln.Evidence

	DB       *db.DB
	Tables   *grounding.TableSet
	Grounded *grounding.Result

	GroundTime time.Duration
}

// New creates a system. Call Ground (or InferMAP, which grounds on demand)
// next.
//
// Deprecated: use Open.
func New(prog *mln.Program, ev *mln.Evidence, cfg Config) *System {
	eng, err := Open(prog, ev, EngineConfig{
		Grounder:          cfg.Grounder,
		UseClosure:        cfg.UseClosure,
		MemoryBudgetBytes: cfg.MemoryBudgetBytes,
		GroundWorkers:     cfg.GroundWorkers,
		DB:                cfg.DB,
	})
	if err != nil {
		// Open only fails opening a DataDir, and the deprecated Config has
		// no durable-storage surface, so this path is unreachable.
		panic(err)
	}
	return &System{eng: eng, cfg: cfg, Prog: prog, Ev: ev, DB: eng.DB()}
}

// Engine returns the Engine the shim delegates to, for incremental
// migration.
func (s *System) Engine() *Engine { return s.eng }

// inferOptions maps the fused Config onto one query's options.
func (s *System) inferOptions() InferOptions {
	return InferOptions{
		Mode:              s.cfg.Mode,
		Seed:              s.cfg.Seed,
		MaxFlips:          s.cfg.MaxFlips,
		MaxTries:          s.cfg.MaxTries,
		GaussSeidelRounds: s.cfg.GaussSeidelRounds,
		Parallelism:       s.cfg.Parallelism,
		Tracker:           s.cfg.Tracker,
	}
}

// syncFromEngine mirrors the engine's ground-once state into the exported
// fields old callers read.
func (s *System) syncFromEngine() {
	s.Tables = s.eng.Tables()
	s.Grounded = s.eng.Grounded()
	s.GroundTime = s.eng.GroundTime()
}

// SetPlanOptions adjusts the engine's optimizer knobs before grounding.
func (s *System) SetPlanOptions(o plan.Options) { s.eng.SetPlanOptions(o) }

// Ground builds the predicate tables and runs the configured grounder.
func (s *System) Ground() error {
	if err := s.eng.Ground(context.Background()); err != nil {
		return err
	}
	s.syncFromEngine()
	return nil
}

// InferMAP runs the full pipeline: grounding (if not already done),
// partitioning per the configuration, then search.
func (s *System) InferMAP() (*MAPResult, error) {
	res, err := s.eng.InferMAP(context.Background(), s.inferOptions())
	if err != nil {
		return nil, err
	}
	s.syncFromEngine()
	return res, nil
}

// InferMarginal estimates marginal probabilities with MC-SAT (Appendix
// A.5). Samples defaults to 200.
func (s *System) InferMarginal(samples int) (*MarginalResult, error) {
	opts := s.inferOptions()
	opts.Samples = samples
	res, err := s.eng.InferMarginal(context.Background(), opts)
	if err != nil {
		return nil, err
	}
	s.syncFromEngine()
	return res, nil
}

// FormatAtom renders a ground atom with the system's symbol table.
func (s *System) FormatAtom(a mln.GroundAtom) string { return s.eng.FormatAtom(a) }

// Stats exposes grounding statistics after Ground.
func (s *System) Stats() (grounding.Stats, error) { return s.eng.Stats() }

// MRFStats exposes the grounded network's size accounting.
func (s *System) MRFStats() (mrf.Stats, error) { return s.eng.MRFStats() }

// OptimalIsInfeasible reports whether grounding already proved the hard
// constraints unsatisfiable.
func (s *System) OptimalIsInfeasible() bool { return s.eng.OptimalIsInfeasible() }
